package rdfh

import (
	"fmt"
	"sort"

	"srdf/internal/dict"
)

// Q6 is TPC-H Q6 in SPARQL: the forecasting revenue change query — a
// pure single-star query over LINEITEM with three range predicates, the
// paper's showcase for RDFscan + zone maps on the shipdate sub-order.
func Q6() string {
	return `
PREFIX rdfh: <` + NS + `>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT (SUM(?ep * ?disc) AS ?revenue)
WHERE {
  ?li rdfh:lineitem_shipdate ?sd .
  ?li rdfh:lineitem_extendedprice ?ep .
  ?li rdfh:lineitem_discount ?disc .
  ?li rdfh:lineitem_quantity ?q .
  FILTER (?sd >= "1994-01-01"^^xsd:date && ?sd < "1995-01-01"^^xsd:date)
  FILTER (?disc >= 0.05 && ?disc <= 0.07 && ?q < 24)
}`
}

// RefQ6 computes Q6's expected answer from the rows.
func RefQ6(d *Data) float64 {
	lo, _ := dict.ParseDate("1994-01-01")
	hi, _ := dict.ParseDate("1995-01-01")
	var rev float64
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		if l.ShipDate >= lo && l.ShipDate < hi &&
			l.Discount >= 0.05 && l.Discount <= 0.07 && l.Quantity < 24 {
			rev += l.ExtendedPrice * l.Discount
		}
	}
	return rev
}

// Q3 is TPC-H Q3: the shipping priority query — customer ⋈ orders ⋈
// lineitem with anti-correlated date predicates, the paper's showcase
// for RDFjoin and cross-table zone-map pushdown.
func Q3() string {
	return `
PREFIX rdfh: <` + NS + `>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?o (SUM(?ep * (1 - ?disc)) AS ?revenue) ?od ?sp
WHERE {
  ?c rdfh:customer_mktsegment ?seg .
  ?o rdfh:order_customer ?c .
  ?o rdfh:order_orderdate ?od .
  ?o rdfh:order_shippriority ?sp .
  ?li rdfh:lineitem_order ?o .
  ?li rdfh:lineitem_shipdate ?sd .
  ?li rdfh:lineitem_extendedprice ?ep .
  ?li rdfh:lineitem_discount ?disc .
  FILTER (?seg = "BUILDING")
  FILTER (?od < "1995-03-15"^^xsd:date)
  FILTER (?sd > "1995-03-15"^^xsd:date)
}
GROUP BY ?o ?od ?sp
ORDER BY DESC(?revenue) ?od
LIMIT 10`
}

// Q3Row is one expected Q3 result row.
type Q3Row struct {
	OrderKey  int
	Revenue   float64
	OrderDate int64
}

// RefQ3 computes Q3's expected top-10.
func RefQ3(d *Data) []Q3Row {
	cut, _ := dict.ParseDate("1995-03-15")
	building := make(map[int]bool)
	for i := range d.Customers {
		if d.Customers[i].MktSegment == "BUILDING" {
			building[d.Customers[i].Key] = true
		}
	}
	ordDate := make(map[int]int64)
	for i := range d.Orders {
		o := &d.Orders[i]
		if building[o.CustKey] && o.OrderDate < cut {
			ordDate[o.Key] = o.OrderDate
		}
	}
	rev := make(map[int]float64)
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		if l.ShipDate > cut {
			if _, ok := ordDate[l.OrderKey]; ok {
				rev[l.OrderKey] += l.ExtendedPrice * (1 - l.Discount)
			}
		}
	}
	rows := make([]Q3Row, 0, len(rev))
	for k, r := range rev {
		rows = append(rows, Q3Row{OrderKey: k, Revenue: r, OrderDate: ordDate[k]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Revenue != rows[j].Revenue {
			return rows[i].Revenue > rows[j].Revenue
		}
		return rows[i].OrderDate < rows[j].OrderDate
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return rows
}

// Q1 is TPC-H Q1: the pricing summary report — a full LINEITEM star with
// heavy aggregation.
func Q1() string {
	return `
PREFIX rdfh: <` + NS + `>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?rf ?ls (SUM(?q) AS ?sum_qty) (SUM(?ep) AS ?sum_base)
       (SUM(?ep * (1 - ?disc)) AS ?sum_disc)
       (SUM(?ep * (1 - ?disc) * (1 + ?tax)) AS ?sum_charge)
       (AVG(?q) AS ?avg_qty) (AVG(?ep) AS ?avg_price)
       (AVG(?disc) AS ?avg_disc) (COUNT(*) AS ?n)
WHERE {
  ?li rdfh:lineitem_returnflag ?rf .
  ?li rdfh:lineitem_linestatus ?ls .
  ?li rdfh:lineitem_quantity ?q .
  ?li rdfh:lineitem_extendedprice ?ep .
  ?li rdfh:lineitem_discount ?disc .
  ?li rdfh:lineitem_tax ?tax .
  ?li rdfh:lineitem_shipdate ?sd .
  FILTER (?sd <= "1998-09-02"^^xsd:date)
}
GROUP BY ?rf ?ls
ORDER BY ?rf ?ls`
}

// Q1Row is one expected Q1 group.
type Q1Row struct {
	ReturnFlag, LineStatus string
	SumQty                 int64
	SumBase, SumDisc       float64
	Count                  int
}

// RefQ1 computes Q1's expected groups.
func RefQ1(d *Data) []Q1Row {
	cut, _ := dict.ParseDate("1998-09-02")
	type key struct{ rf, ls string }
	agg := map[key]*Q1Row{}
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		if l.ShipDate > cut {
			continue
		}
		k := key{l.ReturnFlag, l.LineStatus}
		r := agg[k]
		if r == nil {
			r = &Q1Row{ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus}
			agg[k] = r
		}
		r.SumQty += int64(l.Quantity)
		r.SumBase += l.ExtendedPrice
		r.SumDisc += l.ExtendedPrice * (1 - l.Discount)
		r.Count++
	}
	var rows []Q1Row
	for _, r := range agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ReturnFlag != rows[j].ReturnFlag {
			return rows[i].ReturnFlag < rows[j].ReturnFlag
		}
		return rows[i].LineStatus < rows[j].LineStatus
	})
	return rows
}

// Q5 is TPC-H Q5: the local supplier volume query — a six-way join
// cycle (customer, orders, lineitem, supplier, shared nation, region).
func Q5() string {
	return `
PREFIX rdfh: <` + NS + `>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?nn (SUM(?ep * (1 - ?disc)) AS ?revenue)
WHERE {
  ?c rdfh:customer_nation ?n .
  ?o rdfh:order_customer ?c .
  ?o rdfh:order_orderdate ?od .
  ?li rdfh:lineitem_order ?o .
  ?li rdfh:lineitem_supplier ?s .
  ?li rdfh:lineitem_extendedprice ?ep .
  ?li rdfh:lineitem_discount ?disc .
  ?s rdfh:supplier_nation ?n .
  ?n rdfh:nation_name ?nn .
  ?n rdfh:nation_region ?r .
  ?r rdfh:region_name ?rn .
  FILTER (?rn = "ASIA")
  FILTER (?od >= "1994-01-01"^^xsd:date && ?od < "1995-01-01"^^xsd:date)
}
GROUP BY ?nn
ORDER BY DESC(?revenue)`
}

// Q5Row is one expected Q5 group.
type Q5Row struct {
	Nation  string
	Revenue float64
}

// RefQ5 computes Q5's expected answer.
func RefQ5(d *Data) []Q5Row {
	lo, _ := dict.ParseDate("1994-01-01")
	hi, _ := dict.ParseDate("1995-01-01")
	asiaNations := map[int]string{}
	for i := range d.Nations {
		if d.Regions[d.Nations[i].RegionKey].Name == "ASIA" {
			asiaNations[d.Nations[i].Key] = d.Nations[i].Name
		}
	}
	custNation := map[int]int{}
	for i := range d.Customers {
		custNation[d.Customers[i].Key] = d.Customers[i].NationKey
	}
	suppNation := map[int]int{}
	for i := range d.Suppliers {
		suppNation[d.Suppliers[i].Key] = d.Suppliers[i].NationKey
	}
	ordCustNation := map[int]int{} // order -> customer nation, if in window
	for i := range d.Orders {
		o := &d.Orders[i]
		if o.OrderDate >= lo && o.OrderDate < hi {
			ordCustNation[o.Key] = custNation[o.CustKey]
		}
	}
	rev := map[int]float64{}
	for i := range d.Lineitems {
		l := &d.Lineitems[i]
		cn, ok := ordCustNation[l.OrderKey]
		if !ok {
			continue
		}
		sn := suppNation[l.SuppKey]
		if sn != cn {
			continue
		}
		if _, asia := asiaNations[sn]; !asia {
			continue
		}
		rev[sn] += l.ExtendedPrice * (1 - l.Discount)
	}
	var rows []Q5Row
	for n, r := range rev {
		rows = append(rows, Q5Row{Nation: asiaNations[n], Revenue: r})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Revenue > rows[j].Revenue })
	return rows
}

// Queries maps the benchmark's query ids to their SPARQL text.
func Queries() map[string]string {
	return map[string]string{"Q1": Q1(), "Q3": Q3(), "Q5": Q5(), "Q6": Q6()}
}

// String renders counts.
func (c Counts) String() string {
	return fmt.Sprintf("region=%d nation=%d supplier=%d customer=%d part=%d partsupp=%d orders=%d lineitem=%d",
		c.Regions, c.Nations, c.Suppliers, c.Customers, c.Parts, c.PartSupps, c.Orders, c.Lineitems)
}
