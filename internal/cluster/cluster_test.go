package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/triples"
)

func load(t *testing.T, src string) (*triples.Table, *dict.Dictionary) {
	t.Helper()
	ts, err := nt.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	d := dict.New()
	tb := triples.NewTable(len(ts))
	for _, tr := range ts {
		tb.Append(d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O))
	}
	return tb, d
}

// ordersSrc: two entity classes interleaved in parse order, with dates,
// mimicking the RDF-H layout the paper clusters.
func ordersSrc(n int) string {
	var b strings.Builder
	b.WriteString("@prefix e: <http://e/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		day := 1 + rng.Intn(28)
		fmt.Fprintf(&b, "e:ord%d e:odate \"1996-%02d-%02d\"^^xsd:date ; e:total %d .\n",
			i, 1+rng.Intn(12), day, rng.Intn(1000))
		fmt.Fprintf(&b, "e:item%d e:part \"p%d\" ; e:qty %d ; e:ord e:ord%d .\n",
			i, rng.Intn(50), rng.Intn(10), i)
	}
	return b.String()
}

func discoverAndCluster(t *testing.T, src string, opts Options) (*triples.Table, *dict.Dictionary, *cs.Schema, *Info) {
	t.Helper()
	tb, d := load(t, src)
	copyTB := tb.Clone()
	schema := cs.Discover(tb, d, csOpts())
	inf, err := Reorganize(tb, d, schema, opts)
	if err != nil {
		t.Fatalf("Reorganize: %v", err)
	}
	_ = copyTB
	return tb, d, schema, inf
}

func csOpts() cs.Options {
	o := cs.DefaultOptions()
	o.MinSupport = 3
	return o
}

func TestRangesAreContiguousAndDisjoint(t *testing.T) {
	_, _, schema, inf := discoverAndCluster(t, ordersSrc(20), DefaultOptions())
	if len(inf.Ranges) == 0 {
		t.Fatal("no ranges")
	}
	prevEnd := uint64(1)
	for _, r := range inf.Ranges {
		if r.Base != prevEnd {
			t.Errorf("range %d starts at %d, want %d (contiguous)", r.CSID, r.Base, prevEnd)
		}
		prevEnd = r.Base + uint64(r.Count)
		c := schema.CSs[r.CSID]
		if r.Count != c.Support {
			t.Errorf("range count %d != CS support %d", r.Count, c.Support)
		}
		// subjects of the CS are exactly the payloads of the range
		for _, s := range c.Subjects {
			p := s.Payload()
			if p < r.Base || p >= r.Base+uint64(r.Count) {
				t.Errorf("subject %v outside its range [%d,%d)", s, r.Base, r.Base+uint64(r.Count))
			}
		}
	}
}

func TestGraphPreserved(t *testing.T) {
	// The reorganized store must contain exactly the same logical graph:
	// decode every triple to terms before and after and compare sets.
	src := ordersSrc(15)
	tb, d := load(t, src)
	want := map[string]int{}
	for i := 0; i < tb.Len(); i++ {
		tr := tb.At(i)
		s, _ := d.Term(tr.S)
		p, _ := d.Term(tr.P)
		o, _ := d.Term(tr.O)
		want[s.String()+"|"+p.String()+"|"+o.String()]++
	}
	schema := cs.Discover(tb, d, csOpts())
	if _, err := Reorganize(tb, d, schema, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for i := 0; i < tb.Len(); i++ {
		tr := tb.At(i)
		s, ok1 := d.Term(tr.S)
		p, ok2 := d.Term(tr.P)
		o, ok3 := d.Term(tr.O)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("triple %d has undecodable OIDs after remap", i)
		}
		got[s.String()+"|"+p.String()+"|"+o.String()]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct triples %d -> %d", len(want), len(got))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("triple %s count %d -> %d", k, n, got[k])
		}
	}
}

func TestLiteralOIDsAreValueOrdered(t *testing.T) {
	_, d, _, _ := discoverAndCluster(t, ordersSrc(25), DefaultOptions())
	vals := d.LiteralValues()
	for i := 1; i < len(vals); i++ {
		if dict.Compare(vals[i-1], vals[i]) > 0 {
			t.Fatalf("literal payloads not value-ordered at %d: %v > %v", i, vals[i-1], vals[i])
		}
	}
}

func TestSubOrderingByDate(t *testing.T) {
	tb, d, schema, inf := discoverAndCluster(t, ordersSrc(30), DefaultOptions())
	// find the orders CS (has the odate prop)
	var ordersCS *cs.CS
	for _, c := range schema.Retained() {
		for i := range c.Props {
			if c.Props[i].Name == "odate" {
				ordersCS = c
			}
		}
	}
	if ordersCS == nil {
		t.Fatal("orders CS not found")
	}
	r, ok := inf.RangeOf(ordersCS.ID)
	if !ok {
		t.Fatal("orders range missing")
	}
	if r.SortPred == dict.Nil {
		t.Fatal("auto sort key not chosen for date column")
	}
	// walk subjects in OID order; their odate values must be ascending
	spo := triples.Build(tb, triples.SPO)
	var prev dict.Value
	first := true
	for p := r.Base; p < r.Base+uint64(r.Count); p++ {
		s := dict.ResourceOID(p)
		lo, hi := spo.Range2(s, r.SortPred)
		if hi == lo {
			continue
		}
		v := d.Value(spo.C[lo])
		if !first && dict.Compare(prev, v) > 0 {
			t.Fatalf("subjects not sub-ordered by date: %v after %v", v, prev)
		}
		prev, first = v, false
	}
}

func TestExplicitSortKeyOverride(t *testing.T) {
	src := ordersSrc(20)
	tb, d := load(t, src)
	schema := cs.Discover(tb, d, csOpts())
	var ordersName string
	for _, c := range schema.Retained() {
		for i := range c.Props {
			if c.Props[i].Name == "total" {
				ordersName = c.Name
			}
		}
	}
	inf, err := Reorganize(tb, d, schema, Options{
		SortKeys:    map[string]string{ordersName: "http://e/total"},
		AutoSortKey: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := schema.ByName(ordersName)
	r, _ := inf.RangeOf(c.ID)
	tm, _ := d.Term(r.SortPred)
	if tm.Value != "http://e/total" {
		t.Errorf("sort pred = %v, want explicit total", tm.Value)
	}
}

func TestRowOf(t *testing.T) {
	_, _, schema, inf := discoverAndCluster(t, ordersSrc(10), DefaultOptions())
	c := schema.Retained()[0]
	r, _ := inf.RangeOf(c.ID)
	for i, s := range c.Subjects {
		row, ok := inf.RowOf(c.ID, s)
		if !ok || row != i {
			t.Errorf("RowOf(%v) = %d,%v want %d", s, row, ok, i)
		}
	}
	if _, ok := inf.RowOf(c.ID, dict.ResourceOID(r.Base+uint64(r.Count)+5)); ok {
		t.Error("RowOf out-of-range subject succeeded")
	}
	if _, ok := inf.RowOf(9999, dict.ResourceOID(1)); ok {
		t.Error("RowOf unknown CS succeeded")
	}
}

func TestPSOAlignment(t *testing.T) {
	// After clustering, for a non-null single-valued property of a CS,
	// the PSO rows of that (P, CS-range) stretch are exactly the CS's
	// subjects in order — the "aligned stretches" of §II-C.
	tb, _, schema, inf := discoverAndCluster(t, ordersSrc(40), DefaultOptions())
	pso := triples.Build(tb, triples.PSO)
	for _, c := range schema.Retained() {
		r, _ := inf.RangeOf(c.ID)
		for i := range c.Props {
			ps := &c.Props[i]
			if ps.Nullable || ps.SplitOff || ps.MultiSubjects > 0 {
				continue
			}
			lo, hi := pso.Range1(ps.Pred)
			// rows of this CS inside the property run
			var got []dict.OID
			for k := lo; k < hi; k++ {
				p := pso.B[k].Payload()
				if p >= r.Base && p < r.Base+uint64(r.Count) {
					got = append(got, pso.B[k])
				}
			}
			if len(got) != c.Support {
				t.Fatalf("CS %s prop %s: %d aligned rows, want %d", c.Name, ps.Name, len(got), c.Support)
			}
			for k := 1; k < len(got); k++ {
				if got[k] != got[k-1]+1 {
					t.Fatalf("CS %s prop %s: subject stretch not dense at %d", c.Name, ps.Name, k)
				}
			}
		}
	}
}

func TestRemapsAreBijections(t *testing.T) {
	_, _, _, inf := discoverAndCluster(t, ordersSrc(12), DefaultOptions())
	check := func(m []uint64, name string) {
		seen := make([]bool, len(m))
		for _, nw := range m {
			if nw == 0 || nw > uint64(len(m)) || seen[nw-1] {
				t.Fatalf("%s remap not a bijection", name)
			}
			seen[nw-1] = true
		}
	}
	check(inf.ResMap, "resource")
	check(inf.LitMap, "literal")
}

func TestSchemaReferencesUpdated(t *testing.T) {
	tb, d, schema, _ := discoverAndCluster(t, ordersSrc(15), DefaultOptions())
	// SubjectCS keys must be valid current subjects
	spo := triples.Build(tb, triples.SPO)
	for s, id := range schema.SubjectCS {
		lo, hi := spo.Range1(s)
		if hi == lo {
			t.Fatalf("SubjectCS key %v (cs %d) no longer a subject", s, id)
		}
	}
	// Prop preds must decode to IRIs
	for _, c := range schema.Retained() {
		for i := range c.Props {
			tm, ok := d.Term(c.Props[i].Pred)
			if !ok || tm.Kind != dict.KindIRI {
				t.Fatalf("prop pred %v does not decode to IRI", c.Props[i].Pred)
			}
		}
	}
}
