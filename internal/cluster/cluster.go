// Package cluster implements subject clustering (paper §II-B): after CS
// discovery, the store is physically reorganized so that
//
//   - subjects of one characteristic set occupy one contiguous OID range,
//     ordered within the CS by a sort-key property (for RDF-H, dates —
//     "we ordered the LINEITEM and ORDERS CS-es internally on resp. the
//     shipdate and orderdate attributes"),
//   - literal OIDs are reassigned in (type, value) order, so comparisons
//     on O identifiers execute value range predicates, and
//   - everything else keeps a stable order at the tail of the OID space.
//
// The result is that the PSO table's per-property runs become aligned
// per-CS column stretches — relational columnar storage re-surfacing
// inside the triple representation.
package cluster

import (
	"fmt"
	"sort"

	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/triples"
)

// Options controls reorganization.
type Options struct {
	// SortKeys maps an emergent table name to the predicate IRI whose
	// values order that CS's subjects. Unlisted CSs fall back to
	// AutoSortKey behaviour.
	SortKeys map[string]string
	// AutoSortKey picks a key automatically: the first date-typed
	// column, else the first integer column, else load order. A real
	// self-organizing system would derive this from workload analysis;
	// the paper acknowledges its prototype chose dates by hand.
	AutoSortKey bool
	// KeepLiteralOrder leaves literal OIDs in appearance order instead
	// of value order. Used by the benchmark harness to model the
	// paper's "ParseOrder" configurations, where OID comparisons carry
	// no value semantics and zone maps are unusable.
	KeepLiteralOrder bool
}

// DefaultOptions enables automatic sort-key selection.
func DefaultOptions() Options { return Options{AutoSortKey: true} }

// Range describes the contiguous subject-OID stretch of one CS.
type Range struct {
	CSID int
	// Base is the payload of the first subject OID in the stretch.
	Base uint64
	// Count is the number of subjects.
	Count int
	// SortPred is the predicate the stretch is sub-ordered by (Nil if
	// load order).
	SortPred dict.OID
}

// Info is the outcome of a reorganization.
type Info struct {
	Ranges []Range
	byCS   map[int]int // cs id -> index into Ranges
	// ResMap and LitMap are the payload remappings that were applied
	// (old payload-1 -> new payload), kept for audit and testing.
	ResMap, LitMap []uint64
}

// RangeOf returns the subject range of a CS.
func (inf *Info) RangeOf(csID int) (Range, bool) {
	i, ok := inf.byCS[csID]
	if !ok {
		return Range{}, false
	}
	return inf.Ranges[i], true
}

// RowOf translates a clustered subject OID into its row inside its CS's
// aligned columns.
func (inf *Info) RowOf(csID int, subj dict.OID) (int, bool) {
	r, ok := inf.RangeOf(csID)
	if !ok {
		return 0, false
	}
	p := subj.Payload()
	if p < r.Base || p >= r.Base+uint64(r.Count) {
		return 0, false
	}
	return int(p - r.Base), true
}

// Reorganize renumbers the dictionary and rewrites the triple table in
// place, updating the schema's subject references to the new OIDs.
// The caller must rebuild projections afterwards.
func Reorganize(tb *triples.Table, d *dict.Dictionary, schema *cs.Schema, opts Options) (*Info, error) {
	spo := triples.Build(tb, triples.SPO)
	inf := &Info{byCS: make(map[int]int)}

	// --- Literal remap: value order. ---
	nLit := d.NumLiterals()
	litOrder := make([]uint64, nLit) // new position -> old payload
	for i := range litOrder {
		litOrder[i] = uint64(i + 1)
	}
	if !opts.KeepLiteralOrder {
		vals := d.LiteralValues()
		sort.SliceStable(litOrder, func(i, j int) bool {
			c := dict.Compare(vals[litOrder[i]-1], vals[litOrder[j]-1])
			if c != 0 {
				return c < 0
			}
			return litOrder[i] < litOrder[j]
		})
	}
	litMap := make([]uint64, nLit) // old payload-1 -> new payload
	for newPos, oldPayload := range litOrder {
		litMap[oldPayload-1] = uint64(newPos + 1)
	}

	// --- Resource remap: CS-major, sort-key-minor. ---
	nRes := d.NumResources()
	resMap := make([]uint64, nRes)
	next := uint64(1)
	for _, c := range schema.CSs {
		if !c.Retained {
			continue
		}
		sortPred := pickSortKey(c, d, opts)
		subjects := append([]dict.OID(nil), c.Subjects...)
		if sortPred != dict.Nil {
			sortSubjectsByKey(subjects, sortPred, spo, d)
		}
		base := next
		for _, s := range subjects {
			p := s.Payload()
			if resMap[p-1] != 0 {
				return nil, fmt.Errorf("cluster: subject %v is in two CSs", s)
			}
			resMap[p-1] = next
			next++
		}
		inf.byCS[c.ID] = len(inf.Ranges)
		inf.Ranges = append(inf.Ranges, Range{CSID: c.ID, Base: base, Count: len(subjects), SortPred: sortPred})
	}
	// Remaining resources (predicates, non-subject URIs, irregular
	// subjects) keep their relative order after the clustered stretches.
	for old := uint64(1); old <= uint64(nRes); old++ {
		if resMap[old-1] == 0 {
			resMap[old-1] = next
			next++
		}
	}

	// --- Apply. ---
	d.Remap(resMap, litMap)
	remap := func(o dict.OID) dict.OID {
		p := o.Payload()
		if p == 0 {
			return o
		}
		if o.IsLiteral() {
			return dict.LiteralOID(litMap[p-1])
		}
		return dict.ResourceOID(resMap[p-1])
	}
	tb.Remap(remap)

	// Update schema subject references, keeping the new SortPred order
	// inside each CS (ranges are contiguous, so the sorted-by-OID list is
	// exactly the sub-ordered list).
	newSubjectCS := make(map[dict.OID]int, len(schema.SubjectCS))
	for s, id := range schema.SubjectCS {
		newSubjectCS[remap(s)] = id
	}
	schema.SubjectCS = newSubjectCS
	for _, c := range schema.CSs {
		for i, s := range c.Subjects {
			c.Subjects[i] = remap(s)
		}
		sort.Slice(c.Subjects, func(x, y int) bool { return c.Subjects[x] < c.Subjects[y] })
	}
	// Remap FK and prop predicate OIDs.
	for i := range schema.FKs {
		schema.FKs[i].Pred = remap(schema.FKs[i].Pred)
	}
	for _, c := range schema.CSs {
		for i := range c.Props {
			c.Props[i].Pred = remap(c.Props[i].Pred)
		}
		sort.Slice(c.Props, func(x, y int) bool { return c.Props[x].Pred < c.Props[y].Pred })
		if c.TypeObj != dict.Nil {
			c.TypeObj = remap(c.TypeObj)
		}
	}
	for i := range inf.Ranges {
		if inf.Ranges[i].SortPred != dict.Nil {
			inf.Ranges[i].SortPred = remap(inf.Ranges[i].SortPred)
		}
	}
	inf.ResMap, inf.LitMap = resMap, litMap
	return inf, nil
}

// pickSortKey chooses the sub-ordering property of a CS.
func pickSortKey(c *cs.CS, d *dict.Dictionary, opts Options) dict.OID {
	if iri, ok := opts.SortKeys[c.Name]; ok {
		for i := range c.Props {
			t, _ := d.Term(c.Props[i].Pred)
			if t.Value == iri {
				return c.Props[i].Pred
			}
		}
	}
	if !opts.AutoSortKey {
		return dict.Nil
	}
	// Prefer a date column, then an integer column; prefer non-null,
	// single-valued columns.
	best := dict.Nil
	bestScore := -1
	for i := range c.Props {
		ps := &c.Props[i]
		if ps.SplitOff {
			continue
		}
		var score int
		switch ps.Kind {
		case dict.VDate, dict.VDateTime:
			score = 100
		case dict.VInt, dict.VFloat:
			score = 50
		default:
			continue
		}
		if !ps.Nullable {
			score += 10
		}
		if ps.MultiSubjects == 0 {
			score += 5
		}
		if score > bestScore {
			best, bestScore = ps.Pred, score
		}
	}
	return best
}

// sortSubjectsByKey orders subjects by the value of their first sortPred
// object, NULLs last, ties by subject OID (stable, deterministic).
func sortSubjectsByKey(subjects []dict.OID, sortPred dict.OID, spo *triples.Projection, d *dict.Dictionary) {
	type keyed struct {
		s   dict.OID
		val dict.Value
		has bool
	}
	ks := make([]keyed, len(subjects))
	for i, s := range subjects {
		lo, hi := spo.Range2(s, sortPred)
		k := keyed{s: s}
		if hi > lo {
			o := spo.C[lo]
			if o.IsLiteral() {
				k.val = d.Value(o)
				k.has = true
			}
		}
		ks[i] = k
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.has != b.has {
			return a.has // values first, NULLs last
		}
		if a.has {
			if c := dict.Compare(a.val, b.val); c != 0 {
				return c < 0
			}
		}
		return a.s < b.s
	})
	for i := range ks {
		subjects[i] = ks[i].s
	}
}
