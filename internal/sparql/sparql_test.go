package sparql

import (
	"strings"
	"testing"

	"srdf/internal/dict"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseSimpleStar(t *testing.T) {
	q := mustParse(t, `
SELECT ?a ?n WHERE {
  ?b <http://e/has_author> ?a .
  ?b <http://e/in_year> "1996" .
  ?b <http://e/isbn_no> ?n .
}`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	if len(q.Select) != 2 || q.Select[0].As != "a" || q.Select[1].As != "n" {
		t.Errorf("select = %+v", q.Select)
	}
	if !q.Patterns[1].O.Term.IsLiteral() || q.Patterns[1].O.Term.Value != "1996" {
		t.Errorf("object literal: %+v", q.Patterns[1].O)
	}
	if vars := q.PatternVars(); len(vars) != 3 || vars[0] != "b" {
		t.Errorf("pattern vars = %v", vars)
	}
}

func TestParsePrefixesAndA(t *testing.T) {
	q := mustParse(t, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?x a ex:Book ; ex:title ?t . }`)
	if q.Patterns[0].P.Term.Value != dict.RDFType {
		t.Errorf("'a' not expanded: %v", q.Patterns[0].P)
	}
	if q.Patterns[0].O.Term.Value != "http://example.org/Book" {
		t.Errorf("prefixed name: %v", q.Patterns[0].O)
	}
	if len(q.Patterns) != 2 || q.Patterns[1].S.Var != "x" {
		t.Errorf("semicolon list: %+v", q.Patterns)
	}
}

func TestParseObjectList(t *testing.T) {
	q := mustParse(t, `PREFIX e: <http://e/>
SELECT ?s WHERE { ?s e:tag "a" , "b" , "c" . }`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	for _, tp := range q.Patterns {
		if tp.S.Var != "s" {
			t.Errorf("subject: %v", tp.S)
		}
	}
}

func TestParseFilterExpressions(t *testing.T) {
	q := mustParse(t, `PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE {
  ?s <http://e/qty> ?q .
  ?s <http://e/price> ?p .
  FILTER (?q < 24 && (?p >= 10.5 || ?q != 3))
  FILTER (?p * (1 - ?q) > -100)
}`)
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %d, want 2", len(q.Filters))
	}
	top, ok := q.Filters[0].(*ExBin)
	if !ok || top.Op != OpAnd {
		t.Fatalf("filter0 = %s", ExprString(q.Filters[0]))
	}
	if _, ok := top.R.(*ExBin); !ok {
		t.Errorf("nested or: %s", ExprString(top.R))
	}
	// precedence: ?p * (1-?q) > -100 parses as ((?p*(1-?q)) > -(100))
	cmp, ok := q.Filters[1].(*ExBin)
	if !ok || cmp.Op != OpGt {
		t.Fatalf("filter1 = %s", ExprString(q.Filters[1]))
	}
	if _, ok := cmp.L.(*ExBin); !ok {
		t.Errorf("left of > should be mul: %s", ExprString(cmp.L))
	}
	if un, ok := cmp.R.(*ExUn); !ok || un.Op != OpNeg {
		t.Errorf("right of > should be unary minus: %s", ExprString(cmp.R))
	}
}

func TestParseTypedLiteralsInFilter(t *testing.T) {
	q := mustParse(t, `PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE {
  ?s <http://e/d> ?d .
  FILTER (?d >= "1996-01-01"^^xsd:date && ?d < "1997-01-01"^^<http://www.w3.org/2001/XMLSchema#date>)
}`)
	b := q.Filters[0].(*ExBin)
	l := b.L.(*ExBin).R.(*ExLit)
	if l.Val.Kind != dict.VDate {
		t.Errorf("prefixed datatype literal kind = %v, want date", l.Val.Kind)
	}
	r := b.R.(*ExBin).R.(*ExLit)
	if r.Val.Kind != dict.VDate {
		t.Errorf("full-IRI datatype literal kind = %v, want date", r.Val.Kind)
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `PREFIX e: <http://e/>
SELECT ?flag (SUM(?price * (1 - ?disc)) AS ?rev) (COUNT(*) AS ?n) (AVG(?qty) AS ?aq)
WHERE {
  ?l e:flag ?flag .
  ?l e:price ?price .
  ?l e:disc ?disc .
  ?l e:qty ?qty .
}
GROUP BY ?flag
ORDER BY DESC(?rev) ?flag
LIMIT 10 OFFSET 5`)
	if !q.Aggregating() {
		t.Fatal("query should aggregate")
	}
	if len(q.Select) != 4 {
		t.Fatalf("select = %d items", len(q.Select))
	}
	agg, ok := q.Select[1].Expr.(*ExAgg)
	if !ok || agg.Func != AggSum || agg.Arg == nil {
		t.Errorf("sum agg: %+v", q.Select[1].Expr)
	}
	cnt := q.Select[2].Expr.(*ExAgg)
	if cnt.Func != AggCount || cnt.Arg != nil {
		t.Errorf("count(*): %+v", cnt)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "flag" {
		t.Errorf("group by: %v", q.GroupBy)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by: %+v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("limit/offset: %d/%d", q.Limit, q.Offset)
	}
}

func TestParseDistinctAndStar(t *testing.T) {
	q := mustParse(t, `SELECT DISTINCT * WHERE { ?s ?p ?o }`)
	if !q.Distinct || !q.SelectAll {
		t.Errorf("distinct=%v selectAll=%v", q.Distinct, q.SelectAll)
	}
	if q.Patterns[0].P.Var != "p" {
		t.Errorf("variable predicate: %v", q.Patterns[0].P)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		`SELECT WHERE { ?s ?p ?o }`:                                        "empty select",
		`SELECT ?x WHERE { ?s ?p ?o }`:                                     "unknown select var",
		`SELECT ?s WHERE { }`:                                              "no patterns",
		`SELECT ?s WHERE { ?s <p> ?o`:                                      "unterminated",
		`SELECT ?s WHERE { "lit" <p> ?o }`:                                 "literal subject",
		`SELECT ?s WHERE { ?s <p> ?o . FILTER (?x > 1) }`:                  "unknown filter var",
		`SELECT ?s WHERE { ?s <p> ?o } GROUP BY ?z`:                        "unknown group var",
		`SELECT ?o WHERE { ?s <p> ?o } GROUP BY ?s`:                        "ungrouped select var",
		`SELECT (SUM(?o) AS ?x) WHERE { ?s <p> ?o . FILTER(SUM(?o) > 1) }`: "agg in filter",
		`SELECT ?s WHERE { ?s ex:undefined ?o }`:                           "undefined prefix",
		`SELECT (AVG(*) AS ?x) WHERE { ?s <p> ?o }`:                        "avg star",
		`SELECT ?s WHERE { ?s <p> ?o } LIMIT x`:                            "bad limit",
	}
	for src, why := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %s (%s)", src, why)
		}
	}
}

func TestRoundTripThroughString(t *testing.T) {
	srcs := []string{
		`SELECT ?a ?n WHERE { ?b <http://e/author> ?a . ?b <http://e/isbn> ?n . }`,
		`PREFIX e: <http://e/>
SELECT (SUM(?p * ?q) AS ?tot) WHERE { ?l e:p ?p . ?l e:q ?q . FILTER (?q < 24) }`,
		`SELECT DISTINCT ?s WHERE { ?s <http://e/x> "v"@en . } ORDER BY ?s LIMIT 3`,
		`SELECT ?g (COUNT(*) AS ?n) WHERE { ?s <http://e/g> ?g . } GROUP BY ?g ORDER BY DESC(?n)`,
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n%s\n->\n%s", q1.String(), q2.String())
		}
		if len(q1.Patterns) != len(q2.Patterns) || len(q1.Filters) != len(q2.Filters) {
			t.Errorf("round trip lost parts: %s", src)
		}
	}
}

func TestLexerLessThanVsIRI(t *testing.T) {
	// '<' as comparison operator must not be eaten as an IRI opener.
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://e/v> ?v . FILTER (?v < 10) }`)
	cmp := q.Filters[0].(*ExBin)
	if cmp.Op != OpLt {
		t.Errorf("op = %v", cmp.Op)
	}
	// and an IRI after FILTER-( still lexes as IRI
	q2 := mustParse(t, `SELECT ?s WHERE { ?s <http://e/v> ?v . FILTER (?v = <http://e/x>) }`)
	eq := q2.Filters[0].(*ExBin)
	if lit, ok := eq.R.(*ExLit); !ok || lit.Term.Kind != dict.KindIRI {
		t.Errorf("IRI in filter: %+v", eq.R)
	}
}

func TestCommentsIgnored(t *testing.T) {
	q := mustParse(t, `# leading comment
SELECT ?s # trailing
WHERE { ?s <http://e/p> ?o . # pattern comment
}`)
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestRDFHQ6Shape(t *testing.T) {
	// the exact text used by the benchmark harness must parse
	src := `
PREFIX rdfh: <http://example.com/rdfh/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT (SUM(?ep * ?disc) AS ?revenue)
WHERE {
  ?li rdfh:lineitem_shipdate ?sd .
  ?li rdfh:lineitem_extendedprice ?ep .
  ?li rdfh:lineitem_discount ?disc .
  ?li rdfh:lineitem_quantity ?q .
  FILTER (?sd >= "1994-01-01"^^xsd:date && ?sd < "1995-01-01"^^xsd:date)
  FILTER (?disc >= 0.05 && ?disc <= 0.07 && ?q < 24)
}`
	q := mustParse(t, src)
	if len(q.Patterns) != 4 || len(q.Filters) != 2 || !q.Aggregating() {
		t.Errorf("Q6 shape: %d patterns, %d filters", len(q.Patterns), len(q.Filters))
	}
}

func TestStringRendering(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://e/p> ?o . FILTER (?o > 3) } LIMIT 7`)
	s := q.String()
	for _, want := range []string{"SELECT ?s", "FILTER", "LIMIT 7", "<http://e/p>"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
