package sparql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tEOF    tokKind = iota
	tIRI            // <...>
	tPName          // prefix:local or prefix:
	tVar            // ?x or $x
	tString         // "..." with optional ^^<dt> / ^^pn / @lang folded in
	tNumber
	tKeyword // SELECT, WHERE, ... (upper-cased)
	tPunct   // { } ( ) . ; , * = != < <= > >= && || ! + - /
	tA       // the keyword 'a' (rdf:type)
)

type token struct {
	kind tokKind
	text string
	// literal parts for tString
	datatype, lang string
	line           int
}

func (t token) String() string {
	return fmt.Sprintf("%q", t.text)
}

// ParseError reports a syntax error with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sparql: line %d: %s", e.Line, e.Msg) }

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "WHERE": true, "FILTER": true,
	"PREFIX": true, "BASE": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true, "OPTIONAL": true, "UNION": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipWS()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tEOF, line: l.line})
			return l.toks, nil
		}
		if err := l.next(); err != nil {
			return nil, err
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) errf(format string, args ...interface{}) error {
	return &ParseError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '\n' {
			l.line++
			l.pos++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			l.pos++
			continue
		}
		return
	}
}

func (l *lexer) next() error {
	c := l.src[l.pos]
	switch {
	case c == '<':
		return l.iri()
	case c == '?' || c == '$':
		return l.variable()
	case c == '"' || c == '\'':
		return l.str(c)
	case c >= '0' && c <= '9':
		return l.number(false)
	case c == '{' || c == '}' || c == '(' || c == ')' || c == '.' || c == ';' ||
		c == ',' || c == '*' || c == '=' || c == '+' || c == '/':
		l.pos++
		l.emit(token{kind: tPunct, text: string(c), line: l.line})
		return nil
	case c == '-':
		// negative number literal or minus operator; the parser
		// disambiguates, so always emit the operator and let unary
		// minus handle negatives.
		l.pos++
		l.emit(token{kind: tPunct, text: "-", line: l.line})
		return nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			l.emit(token{kind: tPunct, text: "!=", line: l.line})
		} else {
			l.emit(token{kind: tPunct, text: "!", line: l.line})
		}
		return nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			l.emit(token{kind: tPunct, text: ">=", line: l.line})
		} else {
			l.emit(token{kind: tPunct, text: ">", line: l.line})
		}
		return nil
	case c == '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			l.emit(token{kind: tPunct, text: "&&", line: l.line})
			return nil
		}
		return l.errf("unexpected '&'")
	case c == '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			l.emit(token{kind: tPunct, text: "||", line: l.line})
			return nil
		}
		return l.errf("unexpected '|'")
	default:
		return l.word()
	}
}

func (l *lexer) iri() error {
	// '<' may open an IRI or be the less-than operator: an IRI ref has
	// no whitespace before the closing '>'.
	start := l.pos + 1
	i := start
	for i < len(l.src) && l.src[i] != '>' && l.src[i] != ' ' && l.src[i] != '\n' && l.src[i] != '\t' {
		i++
	}
	if i < len(l.src) && l.src[i] == '>' {
		l.emit(token{kind: tIRI, text: l.src[start:i], line: l.line})
		l.pos = i + 1
		return nil
	}
	// operator '<' or '<='
	l.pos++
	if l.pos < len(l.src) && l.src[l.pos] == '=' {
		l.pos++
		l.emit(token{kind: tPunct, text: "<=", line: l.line})
	} else {
		l.emit(token{kind: tPunct, text: "<", line: l.line})
	}
	return nil
}

func (l *lexer) variable() error {
	l.pos++
	start := l.pos
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == start {
		return l.errf("empty variable name")
	}
	l.emit(token{kind: tVar, text: l.src[start:l.pos], line: l.line})
	return nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (l *lexer) str(quote byte) error {
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return l.errf("unterminated string")
		}
		c := l.src[l.pos]
		l.pos++
		if c == quote {
			break
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return l.errf("dangling escape")
			}
			e := l.src[l.pos]
			l.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(e)
			default:
				return l.errf("unknown escape \\%c", e)
			}
			continue
		}
		if c == '\n' {
			l.line++
		}
		b.WriteByte(c)
	}
	tok := token{kind: tString, text: b.String(), line: l.line}
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '-') {
			l.pos++
		}
		tok.lang = l.src[start:l.pos]
	} else if strings.HasPrefix(l.src[l.pos:], "^^") {
		l.pos += 2
		if l.pos < len(l.src) && l.src[l.pos] == '<' {
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '>' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return l.errf("unterminated datatype IRI")
			}
			tok.datatype = l.src[start:l.pos]
			l.pos++
		} else {
			start := l.pos
			for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == ':' || l.src[l.pos] == '.') {
				l.pos++
			}
			tok.datatype = "pn:" + l.src[start:l.pos] // resolved by parser
		}
	}
	l.emit(tok)
	return nil
}

func (l *lexer) number(neg bool) error {
	start := l.pos
	dot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !dot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			dot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			nxt := l.src[l.pos+1]
			if nxt >= '0' && nxt <= '9' || nxt == '-' || nxt == '+' {
				dot = true
				l.pos += 2
				continue
			}
		}
		break
	}
	text := l.src[start:l.pos]
	if neg {
		text = "-" + text
	}
	l.emit(token{kind: tNumber, text: text, line: l.line})
	return nil
}

func (l *lexer) word() error {
	start := l.pos
	for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '-' || l.src[l.pos] == '.') {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == ':' {
		// prefixed name: word ':' local
		l.pos++
		lstart := l.pos
		for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '-' || l.src[l.pos] == '.') {
			l.pos++
		}
		// trailing '.' is a statement terminator, not part of the name
		for l.pos > lstart && l.src[l.pos-1] == '.' {
			l.pos--
		}
		l.emit(token{kind: tPName, text: l.src[start:l.pos], line: l.line})
		return nil
	}
	word := l.src[start:l.pos]
	// strip trailing dots (statement terminators glued to the word)
	trimmed := strings.TrimRight(word, ".")
	ndots := len(word) - len(trimmed)
	l.pos -= ndots
	word = trimmed
	if word == "" {
		return l.errf("unexpected character %q", l.src[start])
	}
	if word == "a" {
		l.emit(token{kind: tA, text: "a", line: l.line})
		return nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(token{kind: tKeyword, text: up, line: l.line})
		return nil
	}
	return l.errf("unknown token %q", word)
}
