package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"srdf/internal/dict"
)

// Parse parses one SELECT query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, q: &Query{Prefixes: map[string]string{}, Limit: -1, Offset: -1}}
	if err := p.query(); err != nil {
		return nil, err
	}
	return p.q, nil
}

type parser struct {
	toks []token
	pos  int
	q    *Query
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tKeyword || t.text != kw {
		return p.errf("expected %s, got %s", kw, t)
	}
	p.advance()
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != s {
		return p.errf("expected %q, got %s", s, t)
	}
	p.advance()
	return nil
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tKeyword && t.text == kw
}

func (p *parser) query() error {
	for p.isKeyword("PREFIX") {
		p.advance()
		if err := p.prefixDecl(); err != nil {
			return err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return err
	}
	if p.isKeyword("DISTINCT") {
		p.advance()
		p.q.Distinct = true
	}
	if err := p.selectClause(); err != nil {
		return err
	}
	if p.isKeyword("WHERE") {
		p.advance()
	}
	if err := p.groupGraphPattern(); err != nil {
		return err
	}
	if err := p.solutionModifiers(); err != nil {
		return err
	}
	if p.cur().kind != tEOF {
		return p.errf("trailing input %s", p.cur())
	}
	return p.validate()
}

func (p *parser) prefixDecl() error {
	t := p.cur()
	if t.kind != tPName || !strings.HasSuffix(t.text, ":") {
		// PNAME with empty local part arrives as "prefix:"
		if t.kind != tPName {
			return p.errf("expected prefix name, got %s", t)
		}
	}
	name := strings.TrimSuffix(p.advance().text, ":")
	if i := strings.Index(name, ":"); i >= 0 {
		name = name[:i]
	}
	iri := p.cur()
	if iri.kind != tIRI {
		return p.errf("expected IRI after PREFIX %s:", name)
	}
	p.advance()
	p.q.Prefixes[name] = iri.text
	return nil
}

func (p *parser) selectClause() error {
	if p.isPunct("*") {
		p.advance()
		p.q.SelectAll = true
		return nil
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tVar:
			p.advance()
			p.q.Select = append(p.q.Select, SelectItem{Expr: &ExVar{Name: t.text}, As: t.text})
		case t.kind == tPunct && t.text == "(":
			p.advance()
			e, err := p.expr()
			if err != nil {
				return err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return err
			}
			av := p.cur()
			if av.kind != tVar {
				return p.errf("expected variable after AS")
			}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			p.q.Select = append(p.q.Select, SelectItem{Expr: e, As: av.text})
		default:
			if len(p.q.Select) == 0 {
				return p.errf("empty SELECT clause")
			}
			return nil
		}
	}
}

func (p *parser) groupGraphPattern() error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tPunct && t.text == "}":
			p.advance()
			return nil
		case t.kind == tKeyword && t.text == "FILTER":
			p.advance()
			e, err := p.bracketedOrBuiltin()
			if err != nil {
				return err
			}
			p.q.Filters = append(p.q.Filters, e)
			if p.isPunct(".") {
				p.advance()
			}
		case t.kind == tEOF:
			return p.errf("unterminated group pattern")
		default:
			if err := p.triplesSameSubject(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) bracketedOrBuiltin() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// triplesSameSubject parses `subject p o (, o)* (; p o ...)* .`
func (p *parser) triplesSameSubject() error {
	s, err := p.node(true)
	if err != nil {
		return err
	}
	for {
		pr, err := p.predicateNode()
		if err != nil {
			return err
		}
		for {
			o, err := p.node(false)
			if err != nil {
				return err
			}
			p.q.Patterns = append(p.q.Patterns, TriplePattern{S: s, P: pr, O: o})
			if p.isPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if p.isPunct(";") {
			p.advance()
			if p.isPunct(".") || p.isPunct("}") { // trailing semicolon
				break
			}
			continue
		}
		break
	}
	if p.isPunct(".") {
		p.advance()
	}
	return nil
}

func (p *parser) predicateNode() (Node, error) {
	if p.cur().kind == tA {
		p.advance()
		return Constant(dict.IRI(dict.RDFType)), nil
	}
	n, err := p.node(true)
	if err != nil {
		return Node{}, err
	}
	if !n.IsVar() && n.Term.Kind != dict.KindIRI {
		return Node{}, p.errf("predicate must be an IRI or variable")
	}
	return n, nil
}

// node parses a variable, IRI, prefixed name, or (for objects) literal.
func (p *parser) node(subjPos bool) (Node, error) {
	t := p.cur()
	switch t.kind {
	case tVar:
		p.advance()
		return Variable(t.text), nil
	case tIRI:
		p.advance()
		return Constant(dict.IRI(t.text)), nil
	case tPName:
		p.advance()
		iri, err := p.resolvePName(t.text)
		if err != nil {
			return Node{}, err
		}
		return Constant(dict.IRI(iri)), nil
	case tString:
		if subjPos {
			return Node{}, p.errf("literal in subject/predicate position")
		}
		p.advance()
		lit, err := p.stringTerm(t)
		if err != nil {
			return Node{}, err
		}
		return Constant(lit), nil
	case tNumber:
		if subjPos {
			return Node{}, p.errf("literal in subject/predicate position")
		}
		p.advance()
		return Constant(numberTerm(t.text)), nil
	case tKeyword:
		if !subjPos && (t.text == "TRUE" || t.text == "FALSE") {
			p.advance()
			return Constant(dict.TypedLit(strings.ToLower(t.text), dict.XSDBool)), nil
		}
	}
	return Node{}, p.errf("expected term, got %s", t)
}

func (p *parser) resolvePName(pn string) (string, error) {
	i := strings.Index(pn, ":")
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", pn)
	}
	ns, ok := p.q.Prefixes[pn[:i]]
	if !ok {
		return "", p.errf("undefined prefix %q", pn[:i])
	}
	return ns + pn[i+1:], nil
}

func (p *parser) stringTerm(t token) (dict.Term, error) {
	lit := dict.Term{Kind: dict.KindLiteral, Value: t.text, Lang: t.lang}
	if t.datatype != "" {
		dt := t.datatype
		if strings.HasPrefix(dt, "pn:") {
			resolved, err := p.resolvePName(dt[3:])
			if err != nil {
				return dict.Term{}, err
			}
			dt = resolved
		}
		lit.Datatype = dt
	}
	return lit, nil
}

func numberTerm(text string) dict.Term {
	if strings.ContainsAny(text, ".eE") {
		return dict.TypedLit(text, dict.XSDDec)
	}
	return dict.TypedLit(text, dict.XSDInt)
}

// --- expressions (precedence climbing) ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &ExBin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &ExBin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]Op{"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &ExBin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := OpAdd
		if p.cur().text == "-" {
			op = OpSub
		}
		p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &ExBin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := OpMul
		if p.cur().text == "/" {
			op = OpDiv
		}
		p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &ExBin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	switch {
	case p.isPunct("!"):
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ExUn{Op: OpNot, E: e}, nil
	case p.isPunct("-"):
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ExUn{Op: OpNeg, E: e}, nil
	}
	return p.primary()
}

var aggFuncs = map[string]AggFunc{
	"SUM": AggSum, "COUNT": AggCount, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tVar:
		p.advance()
		return &ExVar{Name: t.text}, nil
	case tNumber:
		p.advance()
		return litExpr(numberTerm(t.text)), nil
	case tString:
		p.advance()
		term, err := p.stringTerm(t)
		if err != nil {
			return nil, err
		}
		return litExpr(term), nil
	case tIRI:
		p.advance()
		return litExpr(dict.IRI(t.text)), nil
	case tPName:
		p.advance()
		iri, err := p.resolvePName(t.text)
		if err != nil {
			return nil, err
		}
		return litExpr(dict.IRI(iri)), nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tKeyword:
		if fn, ok := aggFuncs[t.text]; ok {
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			agg := &ExAgg{Func: fn}
			if p.isKeyword("DISTINCT") {
				p.advance()
				agg.Distinct = true
			}
			if p.isPunct("*") {
				if fn != AggCount {
					return nil, p.errf("%s(*) is only valid for COUNT", fn)
				}
				p.advance()
			} else {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		if t.text == "TRUE" || t.text == "FALSE" {
			p.advance()
			return litExpr(dict.TypedLit(strings.ToLower(t.text), dict.XSDBool)), nil
		}
	}
	return nil, p.errf("expected expression, got %s", t)
}

func litExpr(t dict.Term) *ExLit {
	e := &ExLit{Term: t}
	if t.Kind == dict.KindLiteral {
		e.Val = dict.ParseLiteral(t.Value, t.Datatype, t.Lang)
	} else {
		e.Val = dict.Value{Kind: dict.VString, Str: t.Value}
	}
	return e
}

func (p *parser) solutionModifiers() error {
	for {
		t := p.cur()
		if t.kind != tKeyword {
			return nil
		}
		switch t.text {
		case "GROUP":
			p.advance()
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for p.cur().kind == tVar {
				p.q.GroupBy = append(p.q.GroupBy, p.advance().text)
			}
			if len(p.q.GroupBy) == 0 {
				return p.errf("GROUP BY needs at least one variable")
			}
		case "ORDER":
			p.advance()
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			if err := p.orderKeys(); err != nil {
				return err
			}
		case "LIMIT":
			p.advance()
			n, err := p.intTok()
			if err != nil {
				return err
			}
			p.q.Limit = n
		case "OFFSET":
			p.advance()
			n, err := p.intTok()
			if err != nil {
				return err
			}
			p.q.Offset = n
		default:
			return nil
		}
	}
}

func (p *parser) orderKeys() error {
	for {
		switch {
		case p.isKeyword("ASC") || p.isKeyword("DESC"):
			desc := p.advance().text == "DESC"
			e, err := p.bracketedOrBuiltin()
			if err != nil {
				return err
			}
			p.q.OrderBy = append(p.q.OrderBy, OrderKey{Expr: e, Desc: desc})
		case p.cur().kind == tVar:
			p.q.OrderBy = append(p.q.OrderBy, OrderKey{Expr: &ExVar{Name: p.advance().text}})
		default:
			if len(p.q.OrderBy) == 0 {
				return p.errf("ORDER BY needs at least one key")
			}
			return nil
		}
	}
}

func (p *parser) intTok() (int, error) {
	t := p.cur()
	if t.kind != tNumber {
		return 0, p.errf("expected number, got %s", t)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return n, nil
}

// validate performs post-parse semantic checks.
func (p *parser) validate() error {
	if len(p.q.Patterns) == 0 {
		return &ParseError{Line: 1, Msg: "query has no triple patterns"}
	}
	known := map[string]bool{}
	for _, v := range p.q.PatternVars() {
		known[v] = true
	}
	if p.q.Aggregating() {
		grouped := map[string]bool{}
		for _, g := range p.q.GroupBy {
			if !known[g] {
				return &ParseError{Line: 1, Msg: fmt.Sprintf("GROUP BY ?%s: unknown variable", g)}
			}
			grouped[g] = true
		}
		for _, s := range p.q.Select {
			if HasAgg(s.Expr) {
				continue
			}
			for _, v := range s.Expr.Vars(nil) {
				if !grouped[v] {
					return &ParseError{Line: 1, Msg: fmt.Sprintf("?%s must be aggregated or grouped", v)}
				}
			}
		}
	} else {
		for _, s := range p.q.Select {
			for _, v := range s.Expr.Vars(nil) {
				if !known[v] {
					return &ParseError{Line: 1, Msg: fmt.Sprintf("SELECT ?%s: unknown variable", v)}
				}
			}
		}
	}
	for _, f := range p.q.Filters {
		if HasAgg(f) {
			return &ParseError{Line: 1, Msg: "aggregates are not allowed in FILTER"}
		}
		for _, v := range f.Vars(nil) {
			if !known[v] {
				return &ParseError{Line: 1, Msg: fmt.Sprintf("FILTER ?%s: unknown variable", v)}
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
