// Package sparql implements the SPARQL subset the store's front-end
// accepts: SELECT queries over basic graph patterns with FILTERs,
// expression projections with aggregates, GROUP BY, ORDER BY,
// DISTINCT, LIMIT and OFFSET — enough for the RDF-H benchmark queries
// and typical star-shaped workloads the paper targets.
package sparql

import (
	"fmt"
	"strings"

	"srdf/internal/dict"
)

// Node is a triple pattern position: either a variable or a constant
// term.
type Node struct {
	// Var is the variable name without '?', or "" for a constant.
	Var  string
	Term dict.Term
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// Variable makes a variable node.
func Variable(name string) Node { return Node{Var: name} }

// Constant makes a constant node.
func Constant(t dict.Term) Node { return Node{Term: t} }

func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is one pattern of the basic graph pattern.
type TriplePattern struct {
	S, P, O Node
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Op enumerates expression operators.
type Op uint8

// Expression operators.
const (
	OpOr Op = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpNot
	OpNeg
)

func (o Op) String() string {
	switch o {
	case OpOr:
		return "||"
	case OpAnd:
		return "&&"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpNot:
		return "!"
	case OpNeg:
		return "-"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	default:
		return "MAX"
	}
}

// Expr is a filter or projection expression tree.
type Expr interface {
	exprString() string
	// Vars appends the variables the expression references.
	Vars(dst []string) []string
}

// ExVar references a variable.
type ExVar struct{ Name string }

// ExLit is a constant literal with its parsed value.
type ExLit struct {
	Term dict.Term
	Val  dict.Value
}

// ExBin is a binary operation.
type ExBin struct {
	Op   Op
	L, R Expr
}

// ExUn is a unary operation (OpNot, OpNeg).
type ExUn struct {
	Op Op
	E  Expr
}

// ExAgg is an aggregate application.
type ExAgg struct {
	Func AggFunc
	// Arg is nil for COUNT(*).
	Arg      Expr
	Distinct bool
}

func (e *ExVar) exprString() string { return "?" + e.Name }
func (e *ExLit) exprString() string { return e.Term.String() }
func (e *ExBin) exprString() string {
	return "(" + e.L.exprString() + " " + e.Op.String() + " " + e.R.exprString() + ")"
}
func (e *ExUn) exprString() string { return e.Op.String() + "(" + e.E.exprString() + ")" }
func (e *ExAgg) exprString() string {
	inner := "*"
	if e.Arg != nil {
		inner = e.Arg.exprString()
	}
	if e.Distinct {
		inner = "DISTINCT " + inner
	}
	return e.Func.String() + "(" + inner + ")"
}

// Vars implementations.
func (e *ExVar) Vars(dst []string) []string { return append(dst, e.Name) }
func (e *ExLit) Vars(dst []string) []string { return dst }
func (e *ExBin) Vars(dst []string) []string { return e.R.Vars(e.L.Vars(dst)) }
func (e *ExUn) Vars(dst []string) []string  { return e.E.Vars(dst) }
func (e *ExAgg) Vars(dst []string) []string {
	if e.Arg == nil {
		return dst
	}
	return e.Arg.Vars(dst)
}

// String renders an expression.
func ExprString(e Expr) string { return e.exprString() }

// WalkExpr visits e and its sub-expressions in pre-order, stopping the
// descent (and the walk) as soon as fn returns false.
func WalkExpr(e Expr, fn func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !fn(e) {
		return false
	}
	switch x := e.(type) {
	case *ExBin:
		return WalkExpr(x.L, fn) && WalkExpr(x.R, fn)
	case *ExUn:
		return WalkExpr(x.E, fn)
	case *ExAgg:
		return WalkExpr(x.Arg, fn)
	default:
		return true
	}
}

// HasAgg reports whether the expression contains an aggregate.
func HasAgg(e Expr) bool {
	switch x := e.(type) {
	case *ExAgg:
		return true
	case *ExBin:
		return HasAgg(x.L) || HasAgg(x.R)
	case *ExUn:
		return HasAgg(x.E)
	default:
		return false
	}
}

// SelectItem is one projection: an expression with an output name.
type SelectItem struct {
	Expr Expr
	// As is the output variable name. For a bare ?var projection it is
	// the variable name itself.
	As string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SELECT query.
type Query struct {
	Prefixes  map[string]string
	Distinct  bool
	SelectAll bool
	Select    []SelectItem
	Patterns  []TriplePattern
	Filters   []Expr
	GroupBy   []string
	OrderBy   []OrderKey
	// Limit and Offset are -1 when absent.
	Limit, Offset int
}

// Aggregating reports whether the query computes aggregates.
func (q *Query) Aggregating() bool {
	if len(q.GroupBy) > 0 {
		return true
	}
	for _, s := range q.Select {
		if HasAgg(s.Expr) {
			return true
		}
	}
	return false
}

// PatternVars returns the distinct variables of the BGP in first-seen
// order.
func (q *Query) PatternVars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(n Node) {
		if n.IsVar() && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	for _, tp := range q.Patterns {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	return out
}

// String renders the query in parseable SPARQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if q.SelectAll {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			if v, ok := s.Expr.(*ExVar); ok && v.Name == s.As {
				b.WriteString("?" + s.As)
			} else {
				fmt.Fprintf(&b, "(%s AS ?%s)", s.Expr.exprString(), s.As)
			}
		}
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range q.Patterns {
		b.WriteString("  " + tp.String() + "\n")
	}
	for _, f := range q.Filters {
		b.WriteString("  FILTER " + f.exprString() + "\n")
	}
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, g := range q.GroupBy {
			b.WriteString(" ?" + g)
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(" + k.Expr.exprString() + ")")
			} else {
				b.WriteString(" ASC(" + k.Expr.exprString() + ")")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset >= 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}
