// Crash-recovery differentials: the persistence layer must make a
// snapshot + WAL pair equivalent to the in-memory store it mirrors —
// after a clean round-trip, and after a crash at an arbitrary byte of
// the log.
package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"srdf/internal/core"
)

// persistOpts is newStore's configuration plus persistence attachments.
func persistOpts(walPath string) core.Options {
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = -1
	opts.WALPath = walPath
	return opts
}

// checkStoresAgree runs the full per-store differential matrix on both
// stores and requires identical row multisets for every deterministic
// query under every plan configuration.
func checkStoresAgree(got, want *core.Store, queries []Query, label string) error {
	for _, q := range queries {
		if !q.CrossStore {
			continue
		}
		g, err := EvalQuery(got, q.Text)
		if err != nil {
			return fmt.Errorf("%s store: %w", label, err)
		}
		w, err := EvalQuery(want, q.Text)
		if err != nil {
			return fmt.Errorf("reference store: %w", err)
		}
		for _, cfg := range Configs {
			if !eqSeq(sorted(g[cfg]), sorted(w[cfg])) {
				return fmt.Errorf("%s: %v disagrees with reference\nquery: %s\ngot:  %v\nwant: %v",
					label, cfg, q.Text, sorted(g[cfg]), sorted(w[cfg]))
			}
		}
	}
	return nil
}

// RunPersistRoundTrip is the clean-shutdown property: a store carrying
// the script's whole update history in its un-compacted delta layer is
// Saved and re-Opened, and must answer every query row-identically to
// the original in every plan configuration (the physical layout is
// restored exactly, so even LIMIT queries may not drift).
func RunPersistRoundTrip(seed int64, nSubj, nOps int, dir string) error {
	sc := GenScript(seed, nSubj, nOps)
	mut := newStore(1)
	loadAll(mut, sc.Initial)
	if _, err := mut.Organize(); err != nil {
		return err
	}
	for _, op := range sc.Ops {
		if op.Del {
			mut.Delete(op.T)
		} else {
			mut.Add(op.T)
		}
	}
	path := filepath.Join(dir, "roundtrip.srdf")
	if err := mut.Save(path); err != nil {
		return err
	}
	got, err := core.OpenStore(path, persistOpts(""))
	if err != nil {
		return err
	}
	for _, q := range sc.Queries {
		m, err := EvalQuery(mut, q.Text)
		if err != nil {
			return fmt.Errorf("original store: %w", err)
		}
		g, err := EvalQuery(got, q.Text)
		if err != nil {
			return fmt.Errorf("opened store: %w", err)
		}
		for _, cfg := range Configs {
			if !eqSeq(m[cfg], g[cfg]) {
				return fmt.Errorf("save/open drift: %v\nquery: %s\noriginal: %v\nopened:   %v",
					cfg, q.Text, m[cfg], g[cfg])
			}
		}
	}
	return nil
}

// RunCrashRecovery is the kill-at-a-random-offset property. A persisted
// store checkpoints after Organize, then applies the update script with
// every trickle write logged. The "crash" truncates the WAL at a byte
// offset chosen by cut in [0,1); recovery opens the snapshot and replays
// whatever complete records survived. The recovered store must be
// equivalent — across plan modes — to a reference store that applied
// exactly the surviving operation prefix, and must remain fully live
// (it absorbs the rest of the script, compacts, and re-checks).
func RunCrashRecovery(seed int64, nSubj, nOps int, cut float64, dir string) error {
	sc := GenScript(seed, nSubj, nOps)
	snap := filepath.Join(dir, "crash.srdf")
	wal := filepath.Join(dir, "crash.wal")

	st := core.NewStore(persistOpts(wal))
	loadAll(st, sc.Initial)
	if _, err := st.Organize(); err != nil {
		return err
	}
	if err := st.Save(snap); err != nil {
		return err
	}
	for _, op := range sc.Ops {
		if op.Del {
			st.Delete(op.T)
		} else {
			st.Add(op.T)
		}
	}
	if err := st.Close(); err != nil { // sync the tail, then "crash"
		return err
	}

	// Kill: chop the log at an arbitrary byte. Whatever record the cut
	// lands in is torn; recovery must keep the complete prefix.
	data, err := os.ReadFile(wal)
	if err != nil {
		return err
	}
	cutOff := int(cut * float64(len(data)))
	if cutOff > len(data) {
		cutOff = len(data)
	}
	if err := os.WriteFile(wal, data[:cutOff], 0o644); err != nil {
		return err
	}

	rec, err := core.OpenStore(snap, persistOpts(wal))
	if err != nil {
		return err
	}
	defer rec.Close()

	// The surviving prefix is what the recovered store itself replayed.
	// The WAL records only effective operations (set-semantics no-ops are
	// suppressed before logging), so find the script index holding that
	// many effective ops by simulating the set.
	applied := rec.Stats().WALRecords
	idx, effective := opIndexOfEffective(sc, applied)
	if effective != applied {
		return fmt.Errorf("cut=%d/%d: recovered %d ops but the script only yields %d effective ops",
			cutOff, len(data), applied, effective)
	}

	// Reference: the same checkpoint state (Initial, organized) plus the
	// surviving script prefix through the ordinary in-memory path.
	ref := newStore(1)
	loadAll(ref, sc.Initial)
	if _, err := ref.Organize(); err != nil {
		return err
	}
	for _, op := range sc.Ops[:idx] {
		if op.Del {
			ref.Delete(op.T)
		} else {
			ref.Add(op.T)
		}
	}
	if err := checkStoresAgree(rec, ref, sc.Queries, fmt.Sprintf("recovered(cut=%d/%d)", cutOff, len(data))); err != nil {
		return err
	}

	// Liveness after recovery: the store keeps absorbing the rest of the
	// script and compacting; the final state must match a fresh store
	// organized on the script's final triples.
	for _, op := range sc.Ops[idx:] {
		if op.Del {
			rec.Delete(op.T)
		} else {
			rec.Add(op.T)
		}
	}
	if _, err := rec.Compact(); err != nil {
		return err
	}
	fresh := newStore(1)
	loadAll(fresh, sc.Final())
	if _, err := fresh.Organize(); err != nil {
		return err
	}
	return checkStoresAgree(rec, fresh, sc.Queries, "recovered+resumed")
}

// opIndexOfEffective simulates the script's set semantics and returns
// the script index right after the prefix containing `applied` effective
// operations, plus the effective count actually reached (smaller when
// the whole script has fewer). The simulation mirrors the store's WAL
// logging rule exactly: an Add logs iff the triple is absent, a Delete
// logs iff it is present.
func opIndexOfEffective(sc *Script, applied int) (idx, effective int) {
	set := make(map[string]bool)
	key := func(op Op) string { return op.T.S.String() + "|" + op.T.P.String() + "|" + op.T.O.String() }
	for _, t := range sc.Initial {
		set[t.S.String()+"|"+t.P.String()+"|"+t.O.String()] = true
	}
	for i, op := range sc.Ops {
		if effective >= applied {
			return i, effective
		}
		k := key(op)
		if op.Del {
			if set[k] {
				set[k] = false
				effective++
			}
		} else if !set[k] {
			set[k] = true
			effective++
		}
	}
	return len(sc.Ops), effective
}
