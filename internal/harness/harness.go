// Package harness is the differential fuzz/property harness for the
// live-update store: it generates random structured triple sets, random
// update scripts (adds, deletes, duplicate re-adds), and random queries,
// then asserts that
//
//   - within one store, Query ≡ QueryStream ≡ the materializing
//     reference head (QueryReference) for every plan configuration,
//   - a store mutated through the delta layer (and optionally
//     Compact()ed) is row-identical to a fresh store fully Organized on
//     the same final triples, and
//   - Parallelism 1 and 4 produce identical row sequences.
//
// The generators are deterministic in their seeds, so every fuzz finding
// replays exactly.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// NS is the IRI namespace of generated resources.
const NS = "http://h/"

// predKind classifies a generated predicate's object values.
type predKind int

const (
	kindInt predKind = iota
	kindStr
	kindRef
)

// pred is one predicate of the generated universe.
type pred struct {
	iri  string
	kind predKind
}

// Op is one live-update operation.
type Op struct {
	Del bool
	T   nt.Triple
}

// Script is a deterministic workload: an initial graph, an update
// script to run after Organize, and a query set.
type Script struct {
	Initial []nt.Triple
	Ops     []Op
	Queries []Query

	preds []pred
	nSubj int
}

// Query is one generated query; CrossStore marks queries whose result
// set is deterministic (no LIMIT), so it may be compared across stores
// and plan configurations.
type Query struct {
	Text       string
	CrossStore bool
}

func subjIRI(i int) string { return fmt.Sprintf("%ss%d", NS, i) }

func iri(s string) dict.Term { return dict.IRI(s) }

// GenScript builds a deterministic workload from seeds: nSubj subjects
// over a few emergent classes, nOps update operations, and a query set
// exercising scans, stars, joins, filters, aggregation and modifiers.
func GenScript(seed int64, nSubj, nOps int) *Script {
	rnd := rand.New(rand.NewSource(seed))
	sc := &Script{nSubj: nSubj}

	nPreds := 6 + rnd.Intn(4)
	for i := 0; i < nPreds; i++ {
		sc.preds = append(sc.preds, pred{
			iri:  fmt.Sprintf("%sp%d", NS, i),
			kind: predKind(rnd.Intn(3)),
		})
	}
	nClasses := 2 + rnd.Intn(3)
	classProps := make([][]int, nClasses)
	for c := range classProps {
		n := 2 + rnd.Intn(3)
		seen := map[int]bool{}
		for len(classProps[c]) < n {
			p := rnd.Intn(nPreds)
			if !seen[p] {
				seen[p] = true
				classProps[c] = append(classProps[c], p)
			}
		}
		sort.Ints(classProps[c])
	}

	value := func(p pred) dict.Term {
		switch p.kind {
		case kindInt:
			return dict.IntLit(int64(rnd.Intn(40)))
		case kindStr:
			return dict.StringLit(fmt.Sprintf("v%d", rnd.Intn(20)))
		default:
			return iri(subjIRI(rnd.Intn(nSubj)))
		}
	}

	// Initial graph: subjects follow their class's property vector with
	// some nulls, plus a sprinkle of noise triples.
	for i := 0; i < nSubj; i++ {
		c := i % nClasses
		for _, pi := range classProps[c] {
			if rnd.Float64() < 0.85 {
				sc.Initial = append(sc.Initial, nt.Triple{S: iri(subjIRI(i)), P: iri(sc.preds[pi].iri), O: value(sc.preds[pi])})
			}
		}
	}
	for i := 0; i < nSubj/10+1; i++ {
		p := sc.preds[rnd.Intn(nPreds)]
		sc.Initial = append(sc.Initial, nt.Triple{S: iri(subjIRI(rnd.Intn(nSubj))), P: iri(p.iri), O: value(p)})
	}

	// Update script. live tracks the current set so deletes hit real
	// triples and duplicate re-adds are generated on purpose.
	live := append([]nt.Triple(nil), dedup(sc.Initial)...)
	var deleted []nt.Triple
	newSubj := nSubj
	for len(sc.Ops) < nOps && len(live) > 0 {
		switch r := rnd.Float64(); {
		case r < 0.35: // delete an existing triple
			k := rnd.Intn(len(live))
			sc.Ops = append(sc.Ops, Op{Del: true, T: live[k]})
			deleted = append(deleted, live[k])
			live = append(live[:k], live[k+1:]...)
		case r < 0.42: // duplicate re-add (must be a no-op: RDF is a set)
			k := rnd.Intn(len(live))
			sc.Ops = append(sc.Ops, Op{T: live[k]})
		case r < 0.47 && len(deleted) > 0: // resurrect a deleted triple
			k := rnd.Intn(len(deleted))
			t := deleted[k]
			deleted = append(deleted[:k], deleted[k+1:]...)
			sc.Ops = append(sc.Ops, Op{T: t})
			live = append(live, t)
		case r < 0.75: // new subject with a class-shaped property vector
			c := rnd.Intn(nClasses)
			s := iri(subjIRI(newSubj))
			newSubj++
			for _, pi := range classProps[c] {
				if rnd.Float64() < 0.9 {
					t := nt.Triple{S: s, P: iri(sc.preds[pi].iri), O: value(sc.preds[pi])}
					sc.Ops = append(sc.Ops, Op{T: t})
					live = append(live, t)
				}
			}
		default: // extra triple on an existing subject (may not fit its CS)
			k := rnd.Intn(len(live))
			p := sc.preds[rnd.Intn(nPreds)]
			t := nt.Triple{S: live[k].S, P: iri(p.iri), O: value(p)}
			sc.Ops = append(sc.Ops, Op{T: t})
			live = append(live, t)
		}
	}

	sc.genQueries(rnd, classProps)
	return sc
}

func dedup(ts []nt.Triple) []nt.Triple {
	seen := make(map[nt.Triple]bool, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func (sc *Script) genQueries(rnd *rand.Rand, classProps [][]int) {
	pick := func(k predKind) (pred, bool) {
		perm := rnd.Perm(len(sc.preds))
		for _, i := range perm {
			if sc.preds[i].kind == k {
				return sc.preds[i], true
			}
		}
		return pred{}, false
	}
	anyPred := func() pred { return sc.preds[rnd.Intn(len(sc.preds))] }
	add := func(cross bool, format string, args ...any) {
		sc.Queries = append(sc.Queries, Query{Text: fmt.Sprintf(format, args...), CrossStore: cross})
	}

	// One- and two-property scans.
	p1, p2 := anyPred(), anyPred()
	add(true, "SELECT ?s ?a WHERE { ?s <%s> ?a }", p1.iri)
	add(true, "SELECT ?s ?a ?b WHERE { ?s <%s> ?a . ?s <%s> ?b }", p1.iri, p2.iri)

	// A class-shaped star (likely fully covered by one CS table).
	c := classProps[rnd.Intn(len(classProps))]
	var pat strings.Builder
	vars := []string{"?s"}
	for i, pi := range c {
		fmt.Fprintf(&pat, " ?s <%s> ?v%d .", sc.preds[pi].iri, i)
		vars = append(vars, fmt.Sprintf("?v%d", i))
	}
	add(true, "SELECT %s WHERE {%s }", strings.Join(vars, " "), pat.String())

	// Range filter on an int predicate.
	if p, ok := pick(kindInt); ok {
		lo := rnd.Intn(20)
		add(true, "SELECT ?s ?v WHERE { ?s <%s> ?v . FILTER (?v >= %d && ?v <= %d) }", p.iri, lo, lo+10+rnd.Intn(10))
	}
	// Bound object on a ref predicate, and a subject-to-subject join.
	if p, ok := pick(kindRef); ok {
		add(true, "SELECT ?s WHERE { ?s <%s> <%s> }", p.iri, subjIRI(rnd.Intn(sc.nSubj)))
		add(true, "SELECT ?s ?t ?v WHERE { ?s <%s> ?t . ?t <%s> ?v }", p.iri, anyPred().iri)
	}
	// String equality filter.
	if p, ok := pick(kindStr); ok {
		add(true, `SELECT ?s ?v WHERE { ?s <%s> ?v . FILTER (?v = "v%d") }`, p.iri, rnd.Intn(20))
	}
	// DISTINCT, aggregation, ORDER BY, LIMIT.
	add(true, "SELECT DISTINCT ?a WHERE { ?s <%s> ?a }", p1.iri)
	add(true, "SELECT (COUNT(*) AS ?n) WHERE { ?s <%s> ?a }", p2.iri)
	add(true, "SELECT ?a (COUNT(*) AS ?n) WHERE { ?s <%s> ?a } GROUP BY ?a ORDER BY ?a", p1.iri)
	// LIMIT picks an arbitrary subset: deterministic within one store
	// and across Parallelism, but not across stores — CrossStore=false.
	add(false, "SELECT ?s ?a WHERE { ?s <%s> ?a } LIMIT 5", p1.iri)
}

// Final returns the triple set after applying the script's operations to
// the initial graph with set semantics.
func (sc *Script) Final() []nt.Triple {
	set := make(map[nt.Triple]bool)
	var order []nt.Triple
	for _, t := range sc.Initial {
		if !set[t] {
			set[t] = true
			order = append(order, t)
		}
	}
	for _, op := range sc.Ops {
		if op.Del {
			set[op.T] = false
			continue
		}
		if !set[op.T] {
			set[op.T] = true
			order = append(order, op.T)
		}
	}
	var out []nt.Triple
	for _, t := range order {
		if set[t] {
			out = append(out, t)
		}
	}
	return out
}

// Config is one plan configuration of the equivalence matrix. Algo
// forces a join algorithm where eligible (the planner falls back to
// normal costing for joins the forced algorithm cannot run), and
// NoBloom disables runtime bloom filters; both must be invisible in
// the results.
type Config struct {
	Mode    plan.Mode
	Zones   bool
	Algo    string
	NoBloom bool
}

func (c Config) String() string {
	s := c.Mode.String()
	if c.Zones {
		s += "+zm"
	}
	if c.Algo != "" {
		s += "+" + c.Algo
	}
	if c.NoBloom {
		s += "-bloom"
	}
	return s
}

// Configs is the plan-configuration axis of the differential matrix.
var Configs = []Config{
	{Mode: plan.ModeDefault},
	{Mode: plan.ModeRDFScan},
	{Mode: plan.ModeRDFScan, Zones: true},
	{Mode: plan.ModeRDFScan, Zones: true, Algo: "merge"},
	{Mode: plan.ModeRDFScan, Zones: true, Algo: "hash", NoBloom: true},
}

// renderRow encodes one decoded row for comparison (kind-tagged so an
// integer 5 and a string "5" stay distinct).
func renderRow(row []dict.Value) string {
	var b strings.Builder
	for i, v := range row {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d:%s", v.Kind, v.Lexical())
	}
	return b.String()
}

func renderResult(r *exec.Result) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, renderRow(row))
	}
	return out
}

func sorted(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

func eqSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EvalQuery runs one query on one store under every plan configuration,
// asserting Query ≡ QueryStream (row-identical) and ≡ the materialized
// reference head (same multiset). It returns the per-config row
// sequences.
func EvalQuery(st *core.Store, q string) (map[Config][]string, error) {
	out := make(map[Config][]string, len(Configs))
	for _, cfg := range Configs {
		qo := core.QueryOptions{Mode: cfg.Mode, ZoneMaps: cfg.Zones, ForceAlgo: cfg.Algo, NoBloom: cfg.NoBloom}
		res, err := st.Query(q, qo)
		if err != nil {
			return nil, fmt.Errorf("%v Query: %w\nquery: %s", cfg, err, q)
		}
		rows := renderResult(res)

		it, err := st.QueryStream(q, qo)
		if err != nil {
			return nil, fmt.Errorf("%v QueryStream: %w\nquery: %s", cfg, err, q)
		}
		var srows []string
		for it.Next() {
			srows = append(srows, renderRow(it.Row()))
		}
		if !eqSeq(rows, srows) {
			return nil, fmt.Errorf("%v: Query and QueryStream disagree (%d vs %d rows)\nquery: %s\nquery result: %v\nstream result: %v",
				cfg, len(rows), len(srows), q, rows, srows)
		}

		ref, err := st.QueryReference(q, qo)
		if err != nil {
			return nil, fmt.Errorf("%v QueryReference: %w\nquery: %s", cfg, err, q)
		}
		if rrows := renderResult(ref); !eqSeq(sorted(rows), sorted(rrows)) {
			return nil, fmt.Errorf("%v: streaming head and materialized reference disagree (%d vs %d rows)\nquery: %s\nstream: %v\nreference: %v",
				cfg, len(rows), len(rrows), q, rows, rrows)
		}
		out[cfg] = rows
	}
	return out, nil
}

// newStore builds a harness store: low support so the small graphs grow
// tables, auto-compaction off so the pre-Compact delta state is what
// gets tested.
func newStore(parallelism int) *core.Store {
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.Parallelism = parallelism
	opts.CompactThreshold = -1
	return core.NewStore(opts)
}

// autoStore is newStore with auto-compaction enabled at a threshold.
func autoStore(parallelism, threshold int) *core.Store {
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.Parallelism = parallelism
	opts.CompactThreshold = threshold
	return core.NewStore(opts)
}

// coreQO is the default query configuration (the paper's fastest).
func coreQO() core.QueryOptions {
	return core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}
}

func loadAll(st *core.Store, ts []nt.Triple) {
	for _, t := range ts {
		st.Add(t)
	}
}

// BuildStores materializes the script three ways: mutated through the
// delta layer at Parallelism 1 and 4, and a fresh store fully Organized
// on the final triples.
func BuildStores(sc *Script) (mut1, mut4, fresh *core.Store, err error) {
	mut1, mut4 = newStore(1), newStore(4)
	for _, st := range []*core.Store{mut1, mut4} {
		loadAll(st, sc.Initial)
		if _, err := st.Organize(); err != nil {
			return nil, nil, nil, err
		}
		for _, op := range sc.Ops {
			if op.Del {
				st.Delete(op.T)
			} else {
				st.Add(op.T)
			}
		}
	}
	fresh = newStore(1)
	loadAll(fresh, sc.Final())
	if _, err := fresh.Organize(); err != nil {
		return nil, nil, nil, err
	}
	return mut1, mut4, fresh, nil
}

// CheckEquivalence runs the full differential matrix over the script's
// queries: API parity within each store, Parallelism 1 ≡ 4 row
// sequences, and (for deterministic queries) identical row multisets
// between the mutated stores and the fresh re-organized store across
// every plan configuration.
func CheckEquivalence(mut1, mut4, fresh *core.Store, queries []Query) error {
	for _, q := range queries {
		m1, err := EvalQuery(mut1, q.Text)
		if err != nil {
			return fmt.Errorf("mutated(par=1): %w", err)
		}
		m4, err := EvalQuery(mut4, q.Text)
		if err != nil {
			return fmt.Errorf("mutated(par=4): %w", err)
		}
		for _, cfg := range Configs {
			if !eqSeq(m1[cfg], m4[cfg]) {
				return fmt.Errorf("%v: parallelism 1 vs 4 disagree\nquery: %s\npar1: %v\npar4: %v", cfg, q.Text, m1[cfg], m4[cfg])
			}
		}
		if !q.CrossStore {
			continue
		}
		f, err := EvalQuery(fresh, q.Text)
		if err != nil {
			return fmt.Errorf("fresh: %w", err)
		}
		want := sorted(f[Configs[0]])
		for _, cfg := range Configs {
			if !eqSeq(sorted(f[cfg]), want) {
				return fmt.Errorf("fresh store: %v disagrees with %v\nquery: %s", cfg, Configs[0], q.Text)
			}
			if !eqSeq(sorted(m1[cfg]), want) {
				return fmt.Errorf("mutated store %v != fresh store\nquery: %s\nmutated: %v\nfresh: %v",
					cfg, q.Text, sorted(m1[cfg]), want)
			}
		}
	}
	return nil
}

// RunDifferential is the whole property: generate a workload from the
// seeds, mutate stores through the delta layer, and require equivalence
// with a fresh re-organized store — before Compact, and again after.
func RunDifferential(seed int64, nSubj, nOps int) error {
	sc := GenScript(seed, nSubj, nOps)
	mut1, mut4, fresh, err := BuildStores(sc)
	if err != nil {
		return err
	}
	if err := CheckEquivalence(mut1, mut4, fresh, sc.Queries); err != nil {
		return fmt.Errorf("pre-compact: %w", err)
	}
	if _, err := mut1.Compact(); err != nil {
		return err
	}
	if _, err := mut4.Compact(); err != nil {
		return err
	}
	if err := CheckEquivalence(mut1, mut4, fresh, sc.Queries); err != nil {
		return fmt.Errorf("post-compact: %w", err)
	}
	return nil
}
