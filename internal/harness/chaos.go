package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/fault"
	"srdf/internal/server"
	"srdf/internal/storage"
)

// This file is the disk-fault chaos harness: it runs the generated
// workload against a WAL+snapshot store whose durability I/O goes
// through the failpoint filesystem, breaks one class of syscall at a
// time (or many at random), and asserts the degradation contract:
//
//   - the process never dies and no write is half-applied,
//   - reads (driven over HTTP through the real server handler) keep
//     serving while the store is latched read-only,
//   - the store un-latches after the fault clears, and
//   - the recovered store — both live and re-opened from its snapshot
//     and log — is row-identical to a never-faulted reference.

// FaultPoints is the deterministic sweep axis: every durability
// syscall class the storage layer performs, by failpoint name.
var FaultPoints = []string{
	"fs.sync:wal",     // EIO on WAL fsync
	"fs.writeat:wal",  // short write flushing the WAL batch
	"fs.truncate:wal", // interrupted post-checkpoint truncate
	"fs.create:snapshot",
	"fs.write:snapshot", // disk full mid-checkpoint
	"fs.sync:snapshot",
	"fs.rename:snapshot", // failed atomic replace
	"fs.sync:dir",        // directory entry never made durable
}

// OpenFaultPoints is the open-path sweep axis: each entry is the set of
// failpoints armed while OpenStore runs against a mapped snapshot. One
// armed map fault must degrade to the whole-file-read fallback and open
// anyway; map and read broken together must fail with the injected
// error — never a SIGBUS or panic from a half-built mapping.
var OpenFaultPoints = [][]string{
	{"fs.map:snapshot"},
	{"fs.map:snapshot", "fs.read:snapshot"},
}

// RunChaosOpen saves a snapshot, arms points, and re-opens it. With the
// fallback still available the open must succeed and answer every
// deterministic query identically to a clean open; with no path left it
// must fail cleanly with the injected error. Panics (the symptom of
// touching a dead mapping) are caught and reported.
func RunChaosOpen(points []string, seed int64) (err error) {
	fault.Reset()
	defer fault.Reset()
	dir, err := os.MkdirTemp("", "srdf-chaos-open-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "open.srdf")

	sc := GenScript(seed, 40, 40)
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.FS = fault.WrapFS(fault.OS())

	st := core.NewStore(opts)
	loadAll(st, sc.Initial)
	if _, err := st.Organize(); err != nil {
		return err
	}
	if err := st.Save(snapPath); err != nil {
		return err
	}
	st.Close()

	// Reference answers from a clean open.
	qo := coreQO()
	ref, err := core.OpenStore(snapPath, opts)
	if err != nil {
		return fmt.Errorf("clean open: %w", err)
	}
	want := map[string][]string{}
	for _, q := range sc.Queries {
		res, err := ref.Query(q.Text, qo)
		if err != nil {
			return fmt.Errorf("clean open query: %w", err)
		}
		want[q.Text] = sorted(renderResult(res))
	}
	ref.Close()

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("open under %v panicked: %v", points, r)
		}
	}()
	for _, p := range points {
		fault.Enable(p, fault.Spec{Err: fault.ErrInjected})
	}
	faulted, openErr := core.OpenStore(snapPath, opts)
	fallbackLeft := len(points) < 2
	if !fallbackLeft {
		if openErr == nil {
			faulted.Close()
			return fmt.Errorf("open under %v succeeded with every read path broken", points)
		}
		if !errors.Is(openErr, fault.ErrInjected) {
			return fmt.Errorf("open under %v failed with a foreign error: %w", points, openErr)
		}
		return nil
	}
	if openErr != nil {
		return fmt.Errorf("open under %v did not fall back: %w", points, openErr)
	}
	defer faulted.Close()
	for _, q := range sc.Queries {
		res, err := faulted.Query(q.Text, qo)
		if err != nil {
			return fmt.Errorf("fallback-opened store: %w\nquery: %s", err, q.Text)
		}
		if got := sorted(renderResult(res)); !eqSeq(got, want[q.Text]) {
			return fmt.Errorf("fallback-opened store diverged\nquery: %s\ngot:  %v\nwant: %v",
				q.Text, got, want[q.Text])
		}
	}
	return nil
}

// chaosEnv is one chaos run's world: the faulted store behind a real
// server handler, plus a never-faulted reference built from the same
// script.
type chaosEnv struct {
	sc       *Script
	st       *core.Store
	ref      *core.Store
	handler  http.Handler
	dir      string
	walPath  string
	snapPath string
	opts     core.Options
}

func newChaosEnv(seed int64) (*chaosEnv, error) {
	dir, err := os.MkdirTemp("", "srdf-chaos-*")
	if err != nil {
		return nil, err
	}
	e := &chaosEnv{
		sc:       GenScript(seed, 40, 40),
		dir:      dir,
		walPath:  filepath.Join(dir, "chaos.wal"),
		snapPath: filepath.Join(dir, "chaos.srdf"),
	}
	e.opts = core.DefaultOptions()
	e.opts.CS.MinSupport = 3
	e.opts.FS = fault.WrapFS(fault.OS())
	e.opts.WALPath = e.walPath
	e.opts.Retry = storage.RetryPolicy{Attempts: 2, Base: 100 * time.Microsecond, Max: time.Millisecond}
	e.opts.ProbeInterval = 2 * time.Millisecond

	e.st = core.NewStore(e.opts)
	loadAll(e.st, e.sc.Initial)
	if _, err := e.st.Organize(); err != nil {
		e.close()
		return nil, err
	}
	if err := e.st.Save(e.snapPath); err != nil {
		e.close()
		return nil, err
	}

	e.ref = newStore(1)
	loadAll(e.ref, e.sc.Initial)
	if _, err := e.ref.Organize(); err != nil {
		e.close()
		return nil, err
	}
	for _, op := range e.sc.Ops {
		if op.Del {
			e.ref.Delete(op.T)
		} else {
			e.ref.Add(op.T)
		}
	}

	// Admission overflow is not under test here: size the server so the
	// harness's few readers are never queued or rejected.
	e.handler = server.New(srdf.NewFromCore(e.st), server.Config{MaxConcurrent: 16}).Handler()
	return e, nil
}

func (e *chaosEnv) close() {
	if e.st != nil {
		e.st.Close()
	}
	os.RemoveAll(e.dir)
}

// get drives one request through the real server handler and requires
// the status code — the "reads keep serving" oracle.
func (e *chaosEnv) get(target string, want int) error {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	w := httptest.NewRecorder()
	e.handler.ServeHTTP(w, req)
	if w.Code != want {
		return fmt.Errorf("GET %s = %d, want %d: %s", target, w.Code, want, w.Body.String())
	}
	return nil
}

func (e *chaosEnv) sparqlTarget(q string) string {
	return "/sparql?query=" + url.QueryEscape(q)
}

// probeReads asserts the handler still answers queries and the
// liveness probe while the disk is broken.
func (e *chaosEnv) probeReads() error {
	if err := e.get(e.sparqlTarget(e.sc.Queries[0].Text), http.StatusOK); err != nil {
		return fmt.Errorf("degraded read: %w", err)
	}
	if err := e.get("/healthz", http.StatusOK); err != nil {
		return fmt.Errorf("degraded healthz: %w", err)
	}
	return nil
}

// applyOp injects one write; while a fault is armed the only
// acceptable failure is a clean ErrReadOnly rejection.
func (e *chaosEnv) applyOp(op Op, faulted bool) error {
	var err error
	if op.Del {
		err = e.st.Delete(op.T)
	} else {
		err = e.st.Add(op.T)
	}
	if err == nil {
		return nil
	}
	if faulted && errors.Is(err, core.ErrReadOnly) {
		return nil
	}
	return fmt.Errorf("write failed unclean (faulted=%v): %w", faulted, err)
}

// waitHealthy polls the store out of read-only mode after the fault is
// cleared.
func (e *chaosEnv) waitHealthy() error {
	deadline := time.Now().Add(10 * time.Second)
	for e.st.Health().State != core.StateHealthy {
		if time.Now().After(deadline) {
			return fmt.Errorf("store never recovered: %+v", e.st.Health())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// verify compares the faulted store against the reference on every
// deterministic query, then re-opens the durable state (snapshot +
// log) and compares that too.
func (e *chaosEnv) verify() error {
	qo := coreQO()
	for _, q := range e.sc.Queries {
		if !q.CrossStore {
			continue
		}
		want, err := e.ref.Query(q.Text, qo)
		if err != nil {
			return fmt.Errorf("reference: %w", err)
		}
		got, err := e.st.Query(q.Text, qo)
		if err != nil {
			return fmt.Errorf("recovered store: %w\nquery: %s", err, q.Text)
		}
		if !eqSeq(sorted(renderResult(got)), sorted(renderResult(want))) {
			return fmt.Errorf("recovered store diverged from reference\nquery: %s\ngot:  %v\nwant: %v",
				q.Text, sorted(renderResult(got)), sorted(renderResult(want)))
		}
	}

	// Durable equivalence: checkpoint, re-open, re-compare.
	if err := e.st.Save(e.snapPath); err != nil {
		return fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	if err := e.st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	re, err := core.OpenStore(e.snapPath, e.opts)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	e.st = re // close() handles it
	for _, q := range e.sc.Queries {
		if !q.CrossStore {
			continue
		}
		want, err := e.ref.Query(q.Text, qo)
		if err != nil {
			return err
		}
		got, err := re.Query(q.Text, qo)
		if err != nil {
			return fmt.Errorf("reopened store: %w\nquery: %s", err, q.Text)
		}
		if !eqSeq(sorted(renderResult(got)), sorted(renderResult(want))) {
			return fmt.Errorf("reopened store diverged from reference\nquery: %s", q.Text)
		}
	}
	return nil
}

// RunChaosPoint breaks one failpoint for the whole update phase:
// writes either apply or are rejected read-only, reads keep serving
// over HTTP, and after the fault clears the store recovers and ends
// row-identical to the reference (live and re-opened).
func RunChaosPoint(point string, seed int64) error {
	fault.Reset()
	defer fault.Reset()
	e, err := newChaosEnv(seed)
	if err != nil {
		return err
	}
	defer e.close()

	fault.Enable(point, fault.Spec{Err: fault.ErrInjected})
	for i, op := range e.sc.Ops {
		if err := e.applyOp(op, true); err != nil {
			return fmt.Errorf("%s: %w", point, err)
		}
		if i%5 == 4 {
			if err := e.probeReads(); err != nil {
				return fmt.Errorf("%s: %w", point, err)
			}
		}
		if i == len(e.sc.Ops)/2 {
			// a mid-run checkpoint drives the snapshot failpoints; its
			// failure must latch, never corrupt
			if err := e.st.Save(e.snapPath); err != nil &&
				!errors.Is(err, core.ErrReadOnly) && !errors.Is(err, storage.ErrDegraded) {
				return fmt.Errorf("%s: mid-run save failed unclean: %w", point, err)
			}
		}
	}
	fault.Disable(point)

	if err := e.waitHealthy(); err != nil {
		return fmt.Errorf("%s: %w", point, err)
	}
	// Re-apply the whole script — writes rejected while latched land
	// now; set semantics make the replay idempotent and order-exact.
	for _, op := range e.sc.Ops {
		if err := e.applyOp(op, false); err != nil {
			return fmt.Errorf("%s: post-recovery %w", point, err)
		}
	}
	if err := e.verify(); err != nil {
		return fmt.Errorf("%s: %w", point, err)
	}
	return nil
}

// RunChaosRandom is the randomized smoke: concurrent writers and HTTP
// readers race a flipper goroutine that arms and clears random
// failpoints. The invariants are the same — no crash, reads always
// answer, full recovery and equivalence once the storm passes.
func RunChaosRandom(seed int64, d time.Duration) error {
	fault.Reset()
	defer fault.Reset()
	e, err := newChaosEnv(seed)
	if err != nil {
		return err
	}
	defer e.close()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		stop = make(chan struct{})
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// flipper: arm a random point with probabilistic firing, let it
	// bite, clear it, repeat
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(seed))
		for {
			point := FaultPoints[rnd.Intn(len(FaultPoints))]
			fault.Enable(point, fault.Spec{Err: fault.ErrInjected, Prob: 0.5})
			select {
			case <-stop:
				fault.Disable(point)
				return
			case <-time.After(5 * time.Millisecond):
			}
			fault.Disable(point)
		}
	}()

	// writers: hammer the update script in a loop, tolerating clean
	// read-only rejections
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := e.sc.Ops[(i*2+w)%len(e.sc.Ops)]
				if err := e.applyOp(op, true); err != nil {
					fail(err)
					return
				}
				if i%7 == 6 {
					if err := e.st.Save(e.snapPath); err != nil &&
						!errors.Is(err, core.ErrReadOnly) && !errors.Is(err, storage.ErrDegraded) {
						fail(fmt.Errorf("save failed unclean: %w", err))
						return
					}
				}
			}
		}(w)
	}

	// readers: queries and probes over the real handler must answer
	// throughout
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := e.sc.Queries[(i+r)%len(e.sc.Queries)]
				if err := e.get(e.sparqlTarget(q.Text), http.StatusOK); err != nil {
					fail(err)
					return
				}
				if err := e.get("/healthz", http.StatusOK); err != nil {
					fail(err)
					return
				}
			}
		}(r)
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()
	fault.Reset()
	if len(errs) > 0 {
		return errs[0]
	}

	if err := e.waitHealthy(); err != nil {
		return err
	}
	// serial replay re-establishes the canonical final state (last
	// write per triple wins), then the usual equivalence oracle runs
	for _, op := range e.sc.Ops {
		if err := e.applyOp(op, false); err != nil {
			return fmt.Errorf("post-storm %w", err)
		}
	}
	return e.verify()
}
