package harness

import "testing"

// FuzzDifferential explores the seed space of the full differential
// property: random graphs, random update scripts, random queries —
// mutated-store results must match a fresh re-organization, before and
// after Compact, across plan modes and parallelism.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(30))
	f.Add(int64(42), uint8(20), uint8(60))
	f.Add(int64(7), uint8(70), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, nSubj, nOps uint8) {
		// clamp to keep one case fast; the fuzzer varies structure, not
		// scale
		subjects := 10 + int(nSubj)%90
		ops := int(nOps) % 80
		if err := RunDifferential(seed, subjects, ops); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDeltaCompact stresses the delta lifecycle specifically: a store
// with a tiny auto-compaction threshold absorbs the script with
// compactions firing mid-stream, and must stay equivalent to the fresh
// store on every deterministic query.
func FuzzDeltaCompact(f *testing.F) {
	f.Add(int64(9), uint8(50), uint8(60), uint8(8))
	f.Add(int64(3), uint8(30), uint8(40), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nSubj, nOps, thr uint8) {
		subjects := 10 + int(nSubj)%90
		ops := int(nOps) % 80
		threshold := 1 + int(thr)%16
		sc := GenScript(seed, subjects, ops)
		st := autoStore(1, threshold)
		loadAll(st, sc.Initial)
		if _, err := st.Organize(); err != nil {
			t.Fatal(err)
		}
		for i, op := range sc.Ops {
			if op.Del {
				st.Delete(op.T)
			} else {
				st.Add(op.T)
			}
			if i%5 == 0 {
				// force refreshes so auto-compaction interleaves with
				// the update stream
				if _, err := st.Query(sc.Queries[0].Text, coreQO()); err != nil {
					t.Fatal(err)
				}
			}
		}
		fresh := newStore(1)
		loadAll(fresh, sc.Final())
		if _, err := fresh.Organize(); err != nil {
			t.Fatal(err)
		}
		for _, q := range sc.Queries {
			if !q.CrossStore {
				continue
			}
			a, err := EvalQuery(st, q.Text)
			if err != nil {
				t.Fatal(err)
			}
			b, err := EvalQuery(fresh, q.Text)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range Configs {
				if !eqSeq(sorted(a[cfg]), sorted(b[cfg])) {
					t.Fatalf("%v: auto-compacted store != fresh store\nquery: %s\ngot:  %v\nwant: %v",
						cfg, q.Text, sorted(a[cfg]), sorted(b[cfg]))
				}
			}
		}
	})
}
