package harness

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// checkGoroutines fails the test if the goroutine count does not
// settle back near base — a latched store whose recovery prober never
// exits, or a server handler leaking workers, shows up here.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSweep is the deterministic half of the chaos harness: every
// durability failpoint, one at a time, against the generated workload.
func TestChaosSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, point := range FaultPoints {
		t.Run(point, func(t *testing.T) {
			if err := RunChaosPoint(point, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	checkGoroutines(t, base)
}

// TestChaosOpenSweep breaks the snapshot-open read paths: a vetoed mmap
// must degrade to the whole-file read, and both paths broken must fail
// with the injected error — never a panic.
func TestChaosOpenSweep(t *testing.T) {
	for _, points := range OpenFaultPoints {
		t.Run(strings.Join(points, "+"), func(t *testing.T) {
			if err := RunChaosOpen(points, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosRandom is the randomized smoke: concurrent writers, HTTP
// readers, and a failpoint flipper racing under the race detector.
// Gated behind SRDF_CHAOS so the ordinary test run stays quick; CI's
// chaos job sets it.
func TestChaosRandom(t *testing.T) {
	if os.Getenv("SRDF_CHAOS") == "" {
		t.Skip("set SRDF_CHAOS=1 to run the randomized chaos smoke")
	}
	base := runtime.NumGoroutine()
	for _, seed := range []int64{1, 42} {
		if err := RunChaosRandom(seed, 1500*time.Millisecond); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	checkGoroutines(t, base)
}
