package harness

import "testing"

// TestPersistRoundTrip pins a few deterministic seeds of the
// save→open→row-identical property, delta layer included.
func TestPersistRoundTrip(t *testing.T) {
	for _, c := range []struct {
		seed        int64
		nSubj, nOps int
	}{
		{seed: 1, nSubj: 40, nOps: 30},
		{seed: 42, nSubj: 25, nOps: 60},
		{seed: 7, nSubj: 60, nOps: 0},
	} {
		if err := RunPersistRoundTrip(c.seed, c.nSubj, c.nOps, t.TempDir()); err != nil {
			t.Errorf("seed=%d: %v", c.seed, err)
		}
	}
}

// TestCrashRecovery pins deterministic kill points: at the very start of
// the log (everything lost), mid-log, and past the end (nothing lost).
func TestCrashRecovery(t *testing.T) {
	for _, cut := range []float64{0, 0.01, 0.33, 0.5, 0.77, 0.999, 1.0} {
		if err := RunCrashRecovery(11, 35, 45, cut, t.TempDir()); err != nil {
			t.Errorf("cut=%.3f: %v", cut, err)
		}
	}
}

// FuzzCrashRecovery explores the full crash-recovery space: random
// graph, random update script, and a kill at a random WAL byte offset.
// The recovered store must equal a reference store holding exactly the
// surviving operation prefix, across plan modes, and must stay live.
func FuzzCrashRecovery(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(30), uint16(300))
	f.Add(int64(9), uint8(20), uint8(70), uint16(0))
	f.Add(int64(23), uint8(60), uint8(40), uint16(999))
	f.Fuzz(func(t *testing.T, seed int64, nSubj, nOps uint8, cut uint16) {
		subjects := 10 + int(nSubj)%60
		ops := int(nOps) % 60
		frac := float64(cut%1000) / 999.0
		if err := RunCrashRecovery(seed, subjects, ops, frac, t.TempDir()); err != nil {
			t.Fatal(err)
		}
	})
}
