//go:build faultinject

package harness

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"srdf"
	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/fault"
	"srdf/internal/nt"
	"srdf/internal/server"
)

// TestChaosExecPanic (faultinject builds only) injects panics into the
// morsel-scan workers of a live server: the process must survive, each
// failed query must come back as a clean 500, and once the failpoint
// stops firing the same query must return its exact pre-fault rows —
// no worker deadlock, no poisoned state.
func TestChaosExecPanic(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	// One wide CS table, big enough (≥ 8 zone-map blocks) that the scan
	// actually dispatches to the morsel worker pool.
	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.Parallelism = 4
	st := core.NewStore(opts)
	for i := 0; i < 9000; i++ {
		st.Add(nt.Triple{
			S: dict.IRI(fmt.Sprintf("%ss%d", NS, i)),
			P: dict.IRI(NS + "name"),
			O: dict.IntLit(int64(i)),
		})
	}
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	query := fmt.Sprintf("SELECT ?s ?v WHERE { ?s <%sname> ?v }", NS)
	qo := coreQO()
	h := server.New(srdf.NewFromCore(st), server.Config{
		MaxConcurrent: 16,
		Query:         srdf.QueryOptions{Mode: qo.Mode, ZoneMaps: qo.ZoneMaps},
	}).Handler()

	get := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet,
			"/sparql?query="+url.QueryEscape(query), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	before := get()
	if before.Code != http.StatusOK {
		t.Fatalf("pre-fault query: %d %s", before.Code, before.Body.String())
	}

	// The first five morsel-worker entries panic, then the point goes
	// quiet on its own.
	fault.Enable("exec.morsel", fault.Spec{Panic: "chaos: injected worker panic", Count: 5})
	fives, oks := 0, 0
	for i := 0; i < 20; i++ {
		switch w := get(); w.Code {
		case http.StatusInternalServerError:
			fives++
		case http.StatusOK:
			oks++
		default:
			t.Fatalf("query %d: unexpected status %d: %s", i, w.Code, w.Body.String())
		}
	}
	if fives == 0 {
		t.Fatal("no query failed while the panic failpoint was armed")
	}
	if oks == 0 {
		t.Fatal("no query succeeded after the failpoint's firing budget drained")
	}
	fault.Disable("exec.morsel")

	after := get()
	if after.Code != http.StatusOK || after.Body.String() != before.Body.String() {
		t.Fatalf("post-fault query diverged: %d\npre:  %s\npost: %s",
			after.Code, before.Body.String(), after.Body.String())
	}
}
