package harness

import (
	"testing"
)

// TestDifferentialSeeds is the deterministic slice of the property: a
// handful of seeds covering small and mid-size graphs with mixed
// add/delete scripts.
func TestDifferentialSeeds(t *testing.T) {
	cases := []struct {
		seed  int64
		nSubj int
		nOps  int
	}{
		{seed: 1, nSubj: 40, nOps: 30},
		{seed: 2, nSubj: 60, nOps: 50},
		{seed: 3, nSubj: 25, nOps: 60},
		{seed: 7, nSubj: 80, nOps: 20},
		{seed: 11, nSubj: 50, nOps: 45},
	}
	for _, c := range cases {
		c := c
		t.Run("", func(t *testing.T) {
			t.Parallel()
			if err := RunDifferential(c.seed, c.nSubj, c.nOps); err != nil {
				t.Fatalf("seed=%d nSubj=%d nOps=%d: %v", c.seed, c.nSubj, c.nOps, err)
			}
		})
	}
}

// TestDifferentialDeleteOnly drives a script that deletes a large
// fraction of the graph, exercising tombstones without new delta rows.
func TestDifferentialDeleteOnly(t *testing.T) {
	sc := GenScript(5, 50, 0)
	// rewrite the op tape: delete every third initial triple
	for i, tr := range dedup(sc.Initial) {
		if i%3 == 0 {
			sc.Ops = append(sc.Ops, Op{Del: true, T: tr})
		}
	}
	mut1, mut4, fresh, err := BuildStores(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEquivalence(mut1, mut4, fresh, sc.Queries); err != nil {
		t.Fatalf("pre-compact: %v", err)
	}
	if _, err := mut1.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := mut4.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := CheckEquivalence(mut1, mut4, fresh, sc.Queries); err != nil {
		t.Fatalf("post-compact: %v", err)
	}
}

// TestAutoCompactEquivalence re-runs a script with a tiny
// CompactThreshold so compaction triggers mid-script, interleaved with
// the updates — results must still match the fresh store.
func TestAutoCompactEquivalence(t *testing.T) {
	sc := GenScript(9, 50, 60)
	st := autoStore(1, 8)
	loadAll(st, sc.Initial)
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	for i, op := range sc.Ops {
		if op.Del {
			st.Delete(op.T)
		} else {
			st.Add(op.T)
		}
		if i%7 == 0 {
			// interleave queries so refreshes (and auto-compactions)
			// happen mid-script
			if _, err := st.Query(sc.Queries[0].Text, coreQO()); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh := newStore(1)
	loadAll(fresh, sc.Final())
	if _, err := fresh.Organize(); err != nil {
		t.Fatal(err)
	}
	for _, q := range sc.Queries {
		if !q.CrossStore {
			continue
		}
		a, err := EvalQuery(st, q.Text)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvalQuery(fresh, q.Text)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range Configs {
			if !eqSeq(sorted(a[cfg]), sorted(b[cfg])) {
				t.Fatalf("%v: auto-compacted store != fresh store\nquery: %s\ngot:  %v\nwant: %v",
					cfg, q.Text, sorted(a[cfg]), sorted(b[cfg]))
			}
		}
	}
	if st.Stats().DeltaRows > 8+16 {
		t.Fatalf("auto-compaction did not bound the delta: %d rows", st.Stats().DeltaRows)
	}
}
