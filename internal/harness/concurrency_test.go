package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"srdf/internal/core"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// TestConcurrentReadWrite runs writers (Add/Delete/Compact, plus an
// occasional full Organize) against concurrent snapshot readers under
// the race detector. Consistency oracle: every subject carries two star
// properties whose values the writers keep equal, updating them
// delete-both-then-add-both — so at every refresh point a subject
// either exposes a matched (v,v) pair or no complete pair at all. A row
// with a ≠ b means a reader's snapshot tore across epochs.
func TestConcurrentReadWrite(t *testing.T) {
	const (
		nSubjects = 64
		nWriters  = 2
		nReaders  = 4
		writerOps = 150
	)
	pa, pb := NS+"pa", NS+"pb"
	subj := func(i int) dict.Term { return dict.IRI(fmt.Sprintf("%sc%d", NS, i)) }
	pair := func(i, v int) (nt.Triple, nt.Triple) {
		return nt.Triple{S: subj(i), P: dict.IRI(pa), O: dict.IntLit(int64(v))},
			nt.Triple{S: subj(i), P: dict.IRI(pb), O: dict.IntLit(int64(v))}
	}

	opts := core.DefaultOptions()
	opts.CS.MinSupport = 3
	opts.CompactThreshold = 32 // auto-compact under load too
	st := core.NewStore(opts)
	// versions[i] is the value currently (or last) written for subject i;
	// writers own disjoint subject ranges so pairs stay well-formed.
	versions := make([]atomic.Int64, nSubjects)
	for i := 0; i < nSubjects; i++ {
		a, b := pair(i, 0)
		st.Add(a)
		st.Add(b)
	}
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}

	q := fmt.Sprintf("SELECT ?s ?a ?b WHERE { ?s <%s> ?a . ?s <%s> ?b }", pa, pb)
	qo := core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}

	var wg sync.WaitGroup
	errs := make(chan error, nWriters+nReaders)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	for w := 0; w < nWriters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := w * (nSubjects / nWriters)
			hi := lo + nSubjects/nWriters
			for op := 0; op < writerOps; op++ {
				i := lo + (op*7)%(hi-lo)
				old := int(versions[i].Load())
				next := old + 1
				oa, ob := pair(i, old)
				na, nb := pair(i, next)
				// delete both, then add both: no intermediate state
				// exposes a mixed pair
				st.Delete(oa)
				st.Delete(ob)
				st.Add(na)
				st.Add(nb)
				versions[i].Store(int64(next))
				if op%25 == 24 {
					if _, err := st.Compact(); err != nil {
						fail("writer %d: Compact: %v", w, err)
						return
					}
				}
			}
		}()
	}

	// One reorganizer thread: Organize must serialize with the open
	// streams via the reader gate, never crash them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 3; k++ {
			if _, err := st.Organize(); err != nil {
				fail("organize: %v", err)
				return
			}
		}
	}()

	for r := 0; r < nReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 40; it++ {
				rows, err := st.QueryStream(q, qo)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				n := 0
				for rows.Next() {
					row := rows.Row()
					if len(row) != 3 {
						fail("reader %d: torn row arity %d", r, len(row))
						rows.Close()
						return
					}
					a, b := row[1], row[2]
					if a.Kind != dict.VInt || b.Kind != dict.VInt || a.Int != b.Int {
						fail("reader %d: torn row: a=%s b=%s (subject %s)", r, a.Lexical(), b.Lexical(), row[0].Lexical())
						rows.Close()
						return
					}
					n++
				}
				if n == 0 {
					fail("reader %d: snapshot lost all %d subjects", r, nSubjects)
					return
				}
				// materialized API interleaved with streams
				if it%8 == 0 {
					if _, err := st.Query(q, qo); err != nil {
						fail("reader %d: Query: %v", r, err)
						return
					}
				}
				// lock-free schema readers: published schemas must never
				// be mutated by the delta path (SubjectCS, CS stats)
				if it%5 == 0 {
					if sc := st.Schema(); sc != nil {
						_ = sc.Summarize(cs.SummaryOptions{MinSupport: 1})
						_ = sc.String()
					}
					_ = st.SQLSchema()
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Quiesced store must agree with the versions the writers left.
	res, err := st.Query(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != nSubjects {
		t.Fatalf("after quiesce: %d rows, want %d", res.Len(), nSubjects)
	}
	for _, row := range res.Rows {
		if row[1].Int != row[2].Int {
			t.Fatalf("after quiesce: mismatched pair %v", row)
		}
	}
}
