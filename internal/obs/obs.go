// Package obs is the unified telemetry registry: one place where the
// server, the store, the buffer pool, and the executor register their
// counters, gauges, and histograms, and one walk that renders them all
// in Prometheus text exposition format. Centralizing emission here is
// what makes the /metrics lint (every series has HELP/TYPE, no
// duplicates, cumulative buckets) enforceable instead of aspirational.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds metric families in registration order. Registration is
// not hot-path: families are added once at startup; scrapes walk them.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byID map[string]*family
}

// family is one exposition family: a name, HELP/TYPE header, and a
// collect function producing its series.
type family struct {
	name, help, typ string
	collect         func(emit func(labels string, v float64))
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*family{}}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[f.name]; dup {
		panic("obs: duplicate metric family " + f.name)
	}
	r.byID[f.name] = f
	r.fams = append(r.fams, f)
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers a counter family with a single unlabeled series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter",
		collect: func(emit func(string, float64)) { emit("", float64(c.v.Load())) }})
	return c
}

// CounterFunc registers a counter family whose single series is read
// from fn at scrape time — for totals owned elsewhere (store, executor).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "counter",
		collect: func(emit func(string, float64)) { emit("", fn()) }})
}

// LabeledCounter is a counter family keyed by one label.
type LabeledCounter struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
	order []string
}

// With returns the counter for one label value, creating it on first
// use.
func (lc *LabeledCounter) With(value string) *Counter {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	c := lc.vals[value]
	if c == nil {
		c = &Counter{}
		lc.vals[value] = c
		lc.order = append(lc.order, value)
	}
	return c
}

// LabeledCounter registers a counter family with one label dimension.
// Series appear in first-use order; pre-touch values with With for a
// stable exposition.
func (r *Registry) LabeledCounter(name, help, label string) *LabeledCounter {
	lc := &LabeledCounter{label: label, vals: map[string]*Counter{}}
	r.add(&family{name: name, help: help, typ: "counter",
		collect: func(emit func(string, float64)) {
			lc.mu.Lock()
			vals := make([]string, len(lc.order))
			copy(vals, lc.order)
			lc.mu.Unlock()
			for _, v := range vals {
				emit(fmt.Sprintf("{%s=%q}", lc.label, v), float64(lc.With(v).Value()))
			}
		}})
	return lc
}

// Gauge is a settable value series.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers a gauge family with a single settable series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, float64)) { emit("", g.Value()) }})
	return g
}

// GaugeFunc registers a gauge family whose single series is read from
// fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge",
		collect: func(emit func(string, float64)) { emit("", fn()) }})
}

// Histogram is a cumulative-bucket histogram with fixed bounds.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is +Inf overflow
	sum    float64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Histogram registers a histogram family over the given bucket upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.add(&family{name: name, help: help, typ: "histogram",
		collect: func(emit func(string, float64)) {
			h.mu.Lock()
			defer h.mu.Unlock()
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				emit(fmt.Sprintf("_bucket{le=%q}", formatBound(b)), float64(cum))
			}
			cum += h.counts[len(h.bounds)]
			emit(`_bucket{le="+Inf"}`, float64(cum))
			emit("_sum", h.sum)
			emit("_count", float64(h.total))
		}})
	return h
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// WriteText renders every family in registration order in Prometheus
// text exposition format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(suffix string, v float64) {
			fmt.Fprintf(w, "%s%s %s\n", f.name, suffix, formatValue(v))
		})
	}
}

// formatValue renders integral values without an exponent (the way the
// hand-rolled writer did) and everything else with %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
