package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	g := r.Gauge("test_level", "Level.")
	r.CounterFunc("test_derived_total", "Derived.", func() float64 { return 42 })
	r.GaugeFunc("test_ratio", "Ratio.", func() float64 { return 0.5 })
	c.Add(3)
	c.Inc()
	g.Set(7.5)

	out := render(r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 4\n",
		"# TYPE test_level gauge\ntest_level 7.5\n",
		"test_derived_total 42\n",
		"test_ratio 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "test_ops_total") > strings.Index(out, "test_level") {
		t.Error("families not in registration order")
	}
}

func TestLabeledCounter(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("test_results_total", "Results.", "status")
	lc.With("ok").Add(2)
	lc.With("err").Inc()
	lc.With("ok").Inc() // same series again

	out := render(r)
	if !strings.Contains(out, `test_results_total{status="ok"} 3`) {
		t.Errorf("missing ok series:\n%s", out)
	}
	if !strings.Contains(out, `test_results_total{status="err"} 1`) {
		t.Errorf("missing err series:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE test_results_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Durations.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family name did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	lc := r.LabeledCounter("conc_labeled_total", "lc", "k")
	h := r.Histogram("conc_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				lc.With(strconv.Itoa(w % 2)).Inc()
				h.Observe(float64(i))
				if i%100 == 0 {
					render(r)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	out := render(r)
	if !strings.Contains(out, "conc_seconds_count 8000") {
		t.Fatalf("histogram count wrong:\n%s", out)
	}
}
