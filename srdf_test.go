package srdf_test

import (
	"strings"
	"testing"

	"srdf"
)

const demo = `
@prefix ex: <http://demo/> .
ex:b1 a ex:Book ; ex:author ex:a1 ; ex:year 1996 ; ex:isbn "111" .
ex:b2 a ex:Book ; ex:author ex:a2 ; ex:year 1996 ; ex:isbn "222" .
ex:b3 a ex:Book ; ex:author ex:a1 ; ex:year 1998 ; ex:isbn "333" .
ex:a1 ex:name "Alice" ; ex:born 1960 .
ex:a2 ex:name "Bob" ; ex:born 1971 .
`

func organized(t *testing.T) *srdf.Store {
	t.Helper()
	s := srdf.New(srdf.Defaults())
	s.MustLoadTurtle(demo)
	if _, err := s.Organize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublicAPIRoundTrip(t *testing.T) {
	s := organized(t)
	res, err := s.Query(`PREFIX ex: <http://demo/>
SELECT ?n WHERE { ?b ex:author ?a . ?b ex:year 1996 . ?a ex:name ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", res.Len(), res)
	}
}

func TestPublicModes(t *testing.T) {
	s := organized(t)
	q := `PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . ?b ex:year ?y . }`
	a, err := s.QueryWith(q, srdf.QueryOptions{Mode: srdf.Default})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.QueryWith(q, srdf.QueryOptions{Mode: srdf.RDFScan, ZoneMaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("rows: %d vs %d, want 3", a.Len(), b.Len())
	}
}

func TestPublicExplain(t *testing.T) {
	s := organized(t)
	q := `PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . ?b ex:year ?y . }`
	exp, err := s.Explain(q, srdf.QueryOptions{Mode: srdf.RDFScan})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "RDFscan") {
		t.Errorf("explain:\n%s", exp)
	}
}

func TestPublicSchemaAndStats(t *testing.T) {
	s := organized(t)
	if !strings.Contains(s.SQLSchema(), "CREATE TABLE book") {
		t.Errorf("schema:\n%s", s.SQLSchema())
	}
	sum := s.SchemaSummary([]string{"isbn"}, 0)
	if !strings.Contains(sum, "book") {
		t.Errorf("summary:\n%s", sum)
	}
	st := s.Stats()
	if !st.Organized || st.Tables != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPublicTrickleAndColdReset(t *testing.T) {
	s := organized(t)
	s.Add(srdf.Triple{
		S: srdf.IRI("http://demo/b9"),
		P: srdf.IRI("http://demo/isbn"),
		O: srdf.StringLit("999"),
	})
	res, err := s.Query(`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("rows = %d, want 4 after trickle", res.Len())
	}
	s.ResetCold()
	s.ResetPoolStats()
	if _, err := s.Query(`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . }`); err != nil {
		t.Fatal(err)
	}
	if s.PoolStats().Misses == 0 {
		t.Error("cold query should miss pages")
	}
}

func TestQueryBeforeOrganizeWorks(t *testing.T) {
	s := srdf.New(srdf.Defaults())
	s.MustLoadTurtle(demo)
	res, err := s.Query(`PREFIX ex: <http://demo/> SELECT ?i WHERE { ?b ex:isbn ?i . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
}
