package srdf_test

import (
	"fmt"
	"testing"

	"srdf"
)

func planCacheStore(t *testing.T) *srdf.Store {
	t.Helper()
	st := srdf.New(srdf.Defaults())
	ttl := "@prefix ex: <http://ex/> .\n"
	for i := 0; i < 40; i++ {
		ttl += fmt.Sprintf("ex:p%d ex:name \"p%d\" ; ex:age %d .\n", i, i, 20+i)
	}
	st.MustLoadTurtle(ttl)
	if _, err := st.Organize(); err != nil {
		t.Fatal(err)
	}
	return st
}

const pcQuery = `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`

func runQuery(t *testing.T, st *srdf.Store, q string, o srdf.QueryOptions) int {
	t.Helper()
	res, err := st.QueryWith(q, o)
	if err != nil {
		t.Fatal(err)
	}
	return res.Len()
}

// TestPlanCacheHitMiss checks the prepared-plan cache counts a miss on
// first sight of (query, options), a hit on repetition, and distinct
// entries for distinct option sets.
func TestPlanCacheHitMiss(t *testing.T) {
	st := planCacheStore(t)
	o := srdf.QueryOptions{Mode: srdf.RDFScan}

	runQuery(t, st, pcQuery, o)
	ps := st.PlanCacheStats()
	if ps.Hits != 0 || ps.Misses != 1 || ps.Size != 1 {
		t.Fatalf("after first query: %+v", ps)
	}

	runQuery(t, st, pcQuery, o)
	ps = st.PlanCacheStats()
	if ps.Hits != 1 || ps.Misses != 1 {
		t.Fatalf("after repeat: %+v", ps)
	}

	// same text, different options → different plan, separate entry
	runQuery(t, st, pcQuery, srdf.QueryOptions{Mode: srdf.Default})
	ps = st.PlanCacheStats()
	if ps.Hits != 1 || ps.Misses != 2 || ps.Size != 2 {
		t.Fatalf("after option change: %+v", ps)
	}
}

// TestPlanCacheEpochInvalidation checks that published writes (trickle
// insert applied on refresh, Compact, a second Organize) advance the
// epoch and clear cached plans, so no query ever runs a stale plan.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	st := planCacheStore(t)
	o := srdf.QueryOptions{Mode: srdf.RDFScan}

	n := runQuery(t, st, pcQuery, o)
	runQuery(t, st, pcQuery, o)
	ps := st.PlanCacheStats()
	if ps.Hits != 1 || ps.Misses != 1 {
		t.Fatalf("warmup: %+v", ps)
	}
	epoch0 := ps.Epoch

	// A trickle insert is applied on the next query's refresh: the
	// epoch advances and the cached plan must not be reused.
	st.Add(srdf.Triple{
		S: srdf.IRI("http://ex/new"),
		P: srdf.IRI("http://ex/name"),
		O: srdf.StringLit("newcomer"),
	})
	if got := runQuery(t, st, pcQuery, o); got != n+1 {
		t.Fatalf("after insert: got %d rows, want %d", got, n+1)
	}
	ps = st.PlanCacheStats()
	if ps.Epoch == epoch0 {
		t.Fatalf("epoch did not advance after applied insert: %+v", ps)
	}
	if ps.Misses != 2 || ps.Size != 1 {
		t.Fatalf("after insert: want fresh miss and single-entry cache, got %+v", ps)
	}

	// Compact publishes a new epoch too.
	runQuery(t, st, pcQuery, o) // re-warm
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	runQuery(t, st, pcQuery, o)
	ps2 := st.PlanCacheStats()
	if ps2.Epoch == ps.Epoch {
		t.Fatalf("epoch did not advance after Compact: %+v", ps2)
	}
	if ps2.Misses != ps.Misses+1 {
		t.Fatalf("Compact did not invalidate cached plan: %+v (before %+v)", ps2, ps)
	}
}
