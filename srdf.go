// Package srdf is a self-organizing RDF store: a Go reproduction of
// "Self-organizing Structured RDF in MonetDB" (Pham & Boncz, ICDE 2013).
//
// The store ingests RDF triples without requiring a schema, then
// discovers one: characteristic sets (property combinations that co-occur
// on subjects) are detected, generalized, typed, linked with foreign
// keys, and materialized as relational tables over columnar storage. The
// physical triple store is reorganized so that subjects of one table
// occupy a contiguous, value-sub-ordered OID range, and SPARQL star
// patterns are evaluated by the RDFscan/RDFjoin operators with zero
// self-joins, pruned by zone maps. Irregular triples that fit no table
// remain in a classic triple store and stay fully queryable.
//
// Quickstart:
//
//	store := srdf.New(srdf.Defaults())
//	store.MustLoadTurtle(data)
//	report, _ := store.Organize()
//	fmt.Println(report)            // discovered schema summary
//	fmt.Println(store.SQLSchema()) // the emergent DDL
//	res, _ := store.Query(`SELECT ?a ?n WHERE { ... }`)
//	fmt.Println(res)
package srdf

import (
	"context"
	"io"
	"strings"
	"time"

	"srdf/internal/colstore"
	"srdf/internal/core"
	"srdf/internal/cs"
	"srdf/internal/dict"
	"srdf/internal/exec"
	"srdf/internal/nt"
	"srdf/internal/plan"
)

// Mode selects the query-plan family.
type Mode = plan.Mode

// Plan families (the paper's Table I configurations).
const (
	// Default evaluates star patterns with per-property index scans and
	// self-joins over the six ordered projections.
	Default = plan.ModeDefault
	// RDFScan evaluates star patterns with the RDFscan/RDFjoin
	// operators over the emergent tables.
	RDFScan = plan.ModeRDFScan
)

// Options configures a Store. The zero value is not useful; start from
// Defaults.
type Options struct {
	// MinSupport is the minimum subject count (plus incoming-link tally)
	// for a characteristic set to become a table.
	MinSupport int
	// MinPropFrac is the minority fraction under which a property is
	// dropped from a merged CS instead of becoming a nullable column.
	MinPropFrac float64
	// TypeSplit enables per-object-type CS variants.
	TypeSplit bool
	// SortKeys maps emergent table names to predicate IRIs used for
	// subject sub-ordering (empty: automatic date/int selection).
	SortKeys map[string]string
	// PoolPages caps the simulated buffer pool (<=0: unlimited).
	PoolPages int
	// PoolBytes caps the real memory decoded sealed segments may
	// occupy (<=0: unlimited). When an opened store's scans decode past
	// the budget, the least-recently-used unpinned segments are evicted
	// back to their on-disk encoded form (the mmap'd snapshot) and
	// fault in again on the next touch — so a store much larger than
	// memory stays queryable with bounded RSS. Watch
	// PoolStats.Evictions and PoolStats.ResidentBytes.
	PoolBytes int64
	// Parallelism sets the morsel-driven worker count for RDFscan
	// table scans and for partial aggregation in the query head; <=1
	// runs sequentially. Scans merge in morsel order and are
	// row-identical to sequential execution. Aggregate workers' partial
	// states merge deterministically with group output in global
	// first-appearance order; COUNT, MIN, MAX, integer sums and AVG
	// over integers are exactly identical to sequential execution,
	// while SUM/AVG over floats re-associate the addition across
	// partials and can differ from the sequential fold in the last few
	// bits.
	Parallelism int
	// CompactThreshold is the delta-layer size (delta rows plus
	// tombstones) past which the store automatically compacts deltas
	// into freshly sealed segments; 0 uses the built-in default,
	// negative disables auto-compaction (Compact can still be called
	// explicitly).
	CompactThreshold int
	// WALPath attaches a write-ahead log. Every trickle Add/Delete is
	// recorded in lexical term form and fsynced at batch boundaries
	// (before a refresh publishes the writes to queries, at checkpoints,
	// and on Close), so the post-Organize delta layer survives crashes:
	// recovery is Open (load the latest snapshot) + automatic replay of
	// the log's surviving records through the ordinary delta path.
	// Explicit Organize, Compact and Save checkpoint — they write a
	// fresh snapshot (when a snapshot path is attached via Open or Save)
	// and truncate the log. Bulk loads are not logged; checkpoint them
	// with Save.
	WALPath string
}

// Defaults returns the standard configuration.
func Defaults() Options {
	return Options{
		MinSupport:  3,
		MinPropFrac: 0.05,
		TypeSplit:   true,
	}
}

// QueryOptions selects the plan family and zone-map usage per query.
type QueryOptions struct {
	Mode     Mode
	ZoneMaps bool
	// ForceAlgo pins the physical join algorithm ("hash", "merge",
	// "rdfjoin") wherever the optimizer could have applied it; joins the
	// pinned algorithm cannot serve keep the cost-based choice. Meant
	// for testing and plan comparison.
	ForceAlgo string
	// NoBloom disables runtime bloom filters on hash-join probe sides.
	NoBloom bool
	// ForceOrder fixes the left-deep star join order by subject
	// variable name (without the leading '?').
	ForceOrder []string
	// MemLimit bounds the bytes the query's materializing operators may
	// retain; 0 is unlimited. An exceeded budget fails the one query
	// with ErrMemBudget without affecting concurrent queries.
	MemLimit int64
}

func (o QueryOptions) core() core.QueryOptions {
	return core.QueryOptions{
		Mode:       o.Mode,
		ZoneMaps:   o.ZoneMaps,
		ForceAlgo:  o.ForceAlgo,
		NoBloom:    o.NoBloom,
		ForceOrder: o.ForceOrder,
		MemLimit:   o.MemLimit,
	}
}

// ErrMemBudget marks a query that exceeded its MemLimit.
var ErrMemBudget = exec.ErrMemBudget

// Store is a self-organizing RDF store. Create with New.
type Store struct {
	inner *core.Store
}

// New creates an empty store.
func New(o Options) *Store {
	return &Store{inner: core.NewStore(coreOptions(o))}
}

// Open loads a snapshot written by Save (or `srdf build`) and returns a
// ready store: schema, catalog and delta layer exactly as checkpointed,
// with no re-parse and no re-Organize. Opening is cheap — sealed column
// segments are checksummed but stay in their compressed on-disk form
// until a scan first touches them (watch PoolStats.SegmentsDecoded), so
// a large store opens in milliseconds and cold queries fault in only the
// columns they read. With Options.WALPath set, the log's surviving
// records are replayed into the delta layer before Open returns, and the
// path becomes the target of future checkpoints.
func Open(path string, o Options) (*Store, error) {
	inner, err := core.OpenStore(path, coreOptions(o))
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

func coreOptions(o Options) core.Options {
	copts := core.DefaultOptions()
	if o.MinSupport > 0 {
		copts.CS.MinSupport = o.MinSupport
	}
	if o.MinPropFrac > 0 {
		copts.CS.MinPropFrac = o.MinPropFrac
	}
	copts.CS.TypeSplit = o.TypeSplit
	copts.Cluster.SortKeys = o.SortKeys
	copts.PoolPages = o.PoolPages
	copts.PoolBytes = o.PoolBytes
	copts.Parallelism = o.Parallelism
	copts.CompactThreshold = o.CompactThreshold
	copts.WALPath = o.WALPath
	return copts
}

// Save checkpoints the whole store to path as a versioned, checksummed
// binary snapshot: dictionary, base triples, discovered schema, sealed
// compressed segments, tombstones, delta rows and the irregular residue.
// The write is atomic (temp file + rename), pending writes are folded in
// first, and an attached WAL is truncated — its records are now in the
// snapshot. path becomes the target for future Organize/Compact
// checkpoints.
func (s *Store) Save(path string) error { return s.inner.Save(path) }

// Close flushes and detaches the write-ahead log, if one is attached.
// The store remains usable in memory afterwards, but trickle writes are
// no longer logged.
func (s *Store) Close() error { return s.inner.Close() }

// Report summarizes an Organize run.
type Report = core.OrganizeReport

// Result is a decoded query result; Vars are the output columns and each
// row holds typed values (use Value.Lexical for display).
type Result = exec.Result

// Value is a typed query-result cell.
type Value = dict.Value

// Triple is one RDF statement for trickle insertion.
type Triple = nt.Triple

// Term constructors for building triples programmatically.
var (
	IRI       = dict.IRI
	Blank     = dict.Blank
	StringLit = dict.StringLit
	TypedLit  = dict.TypedLit
	IntLit    = dict.IntLit
	FloatLit  = dict.FloatLit
	DateLit   = dict.DateLit
	LangLit   = dict.LangLit
)

// LoadNTriples bulk-loads N-Triples from r. With lenient set, malformed
// lines are skipped and returned as errors rather than aborting.
func (s *Store) LoadNTriples(r io.Reader, lenient bool) (int, []error, error) {
	return s.inner.LoadNTriples(r, lenient)
}

// LoadTurtle loads the supported Turtle subset from r.
func (s *Store) LoadTurtle(r io.Reader) (int, error) {
	return s.inner.LoadTurtle(r)
}

// MustLoadTurtle loads Turtle source text, panicking on parse errors.
// Intended for examples and tests.
func (s *Store) MustLoadTurtle(src string) int {
	n, err := s.inner.LoadTurtle(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	return n
}

// Add trickle-inserts one triple. After Organize the triple lands in the
// mutable delta layer: its subject is matched against the existing
// characteristic sets and either gets a delta row behind one table's
// sealed segments or spills to the irregular leftover store — exactly
// queryable either way, with no rebuild. The live path treats the graph
// as a set: adding an already-present triple is a no-op. While the
// store is latched read-only after durability failures (see Health) the
// write is rejected with an error wrapping ErrReadOnly.
func (s *Store) Add(t Triple) error { return s.inner.Add(t) }

// Delete removes one triple. After Organize the subject's sealed row is
// tombstoned and its surviving values are re-routed through the delta
// layer at the next query; deleting an absent triple is a no-op. While
// the store is latched read-only the delete is rejected with an error
// wrapping ErrReadOnly.
func (s *Store) Delete(t Triple) error { return s.inner.Delete(t) }

// ErrReadOnly matches (via errors.Is) the error writes receive while
// the store is degraded to read-only after durability failures.
var ErrReadOnly = core.ErrReadOnly

// Health is a point-in-time view of the store's durability state.
type Health = core.Health

// Health reports whether the store is serving normally or has latched
// read-only after WAL/checkpoint failures: the latched error, the
// number of failed recovery probes, and the countdown to the next one.
// Reads keep serving the last published epoch either way; a background
// probe un-latches the store when the disk recovers.
func (s *Store) Health() Health { return s.inner.Health() }

// Organize discovers the schema, clusters subjects, and materializes the
// relational catalog. Call it after bulk loading, and occasionally after
// heavy update traffic to re-cluster from scratch; day-to-day deltas are
// folded in incrementally by queries and Compact instead. Organize
// renumbers the dictionary, so it waits for open Rows iterators — close
// them first (same-goroutine calls with an open stream deadlock).
func (s *Store) Organize() (Report, error) { return s.inner.Organize() }

// CompactReport summarizes a Compact run.
type CompactReport = core.CompactReport

// Compact merges the delta layer (delta rows, tombstones) into freshly
// sealed compressed segments and refreshes the affected tables' CS
// statistics — the incremental, much cheaper alternative to a full
// re-Organize. It also runs automatically once the delta outgrows
// Options.CompactThreshold. Concurrent readers are unaffected: they
// keep their snapshot until their next query.
func (s *Store) Compact() (CompactReport, error) { return s.inner.Compact() }

// Query runs a SPARQL SELECT query with the default configuration
// (RDFscan plans with zone maps — the paper's fastest).
func (s *Store) Query(q string) (*Result, error) {
	return s.inner.Query(q, core.QueryOptions{Mode: RDFScan, ZoneMaps: true})
}

// QueryWith runs a SPARQL SELECT query under an explicit configuration.
func (s *Store) QueryWith(q string, o QueryOptions) (*Result, error) {
	return s.inner.Query(q, o.core())
}

// Rows is a streaming query result; see QueryStream.
type Rows = core.Rows

// QueryStream runs a SPARQL SELECT query with the default configuration
// and returns a streaming row iterator: rows are produced batch by batch
// as the consumer pulls them, LIMIT stops the underlying scans early,
// and large results never materialize. Every query shape streams —
// GROUP BY/aggregates fold into per-group states, DISTINCT keeps only a
// key set, and ORDER BY + LIMIT k holds at most k rows of sort state —
// so there is no materializing fallback. The iterator reads an immutable
// epoch snapshot: Add, Delete, Compact and other queries may run
// concurrently while it is open and never affect its rows. Only
// Organize blocks until every open iterator is closed (exhaustion
// closes automatically).
func (s *Store) QueryStream(q string) (*Rows, error) {
	return s.inner.QueryStream(q, core.QueryOptions{Mode: RDFScan, ZoneMaps: true})
}

// QueryStreamWith is QueryStream under an explicit configuration.
func (s *Store) QueryStreamWith(q string, o QueryOptions) (*Rows, error) {
	return s.inner.QueryStream(q, o.core())
}

// QueryStreamCtx is QueryStream bound to a context: when ctx is
// cancelled or its deadline passes, the pipeline's scans, joins and
// morsel workers stop at the next batch boundary, Next returns false,
// and Rows.Err reports the cause. Malformed or unplannable queries come
// back as *core.BadQueryError.
func (s *Store) QueryStreamCtx(ctx context.Context, q string, o QueryOptions) (*Rows, error) {
	return s.inner.QueryStreamCtx(ctx, q, o.core())
}

// PlanCacheStats exposes the prepared-plan cache counters: plans are
// cached per (query text, options) at the current snapshot epoch, and
// any published change — trickle refresh, Organize, Compact — advances
// the epoch and drops the cache.
type PlanCacheStats = core.PlanCacheStats

// PlanCacheStats returns the prepared-plan cache counters.
func (s *Store) PlanCacheStats() PlanCacheStats { return s.inner.PlanCacheStats() }

// Explain returns the plan tree that QueryWith would execute.
func (s *Store) Explain(q string, o QueryOptions) (string, error) {
	return s.inner.Explain(q, o.core())
}

// ExplainAnalyze executes q and returns the plan tree annotated with
// the actual row counts and per-operator times of that execution
// (act_rows beside est_rows), plus a top-line summary of the worst
// estimation error. The query runs to completion under ctx — EXPLAIN
// ANALYZE costs what the query costs.
func (s *Store) ExplainAnalyze(ctx context.Context, q string, o QueryOptions) (string, error) {
	return s.inner.ExplainAnalyze(ctx, q, o.core())
}

// QueryRecord is one completed query in the structured query log.
type QueryRecord = core.QueryRecord

// WorkloadProfile aggregates the query log into per-predicate touch
// counts and per-column filter counts — the sensor a self-organization
// policy would read.
type WorkloadProfile = core.WorkloadProfile

// QueryLog returns the most recent completed queries, newest first.
func (s *Store) QueryLog() []QueryRecord { return s.inner.QueryLog() }

// WorkloadProfile returns the cumulative workload aggregation of the
// query log.
func (s *Store) WorkloadProfile() WorkloadProfile { return s.inner.WorkloadProfile() }

// QueryLogCounts returns the cumulative (queries, result rows) totals
// the query log has recorded, for metrics exposition.
func (s *Store) QueryLogCounts() (queries, rows uint64) { return s.inner.QueryLogCounts() }

// Epoch returns the published snapshot epoch; it advances on every
// visible change (trickle refresh, Organize, Compact).
func (s *Store) Epoch() uint64 { return s.inner.Epoch() }

// Uptime reports the time since the store was created or opened.
func (s *Store) Uptime() time.Duration { return s.inner.Uptime() }

// Organized reports whether the store has a materialized schema, from
// Organize or from an opened snapshot.
func (s *Store) Organized() bool { return s.inner.Organized() }

// SQLSchema renders the emergent relational schema as SQL DDL.
func (s *Store) SQLSchema() string { return s.inner.SQLSchema() }

// SchemaSummary renders a reduced schema: only tables matching the
// keywords (any, case-insensitive) or at/above minSupport, expanded over
// foreign-key reachability — the paper's session-time schema
// summarization.
func (s *Store) SchemaSummary(keywords []string, minSupport int) string {
	sc := s.inner.Schema()
	if sc == nil {
		return "-- store not organized yet\n"
	}
	sum := sc.Summarize(cs.SummaryOptions{Keywords: keywords, MinSupport: minSupport, FollowFKs: true})
	var b strings.Builder
	for _, c := range sum.CSs {
		b.WriteString("TABLE " + c.Name)
		cols := make([]string, 0, len(c.Props))
		for i := range c.Props {
			cols = append(cols, c.Props[i].Name)
		}
		b.WriteString(" (" + strings.Join(cols, ", ") + ")\n")
	}
	for _, fk := range sum.FKs {
		b.WriteString("  FK " + sum.NameOf(fk.From) + "." + fk.Name + " -> " + sum.NameOf(fk.To) + "\n")
	}
	return b.String()
}

// Stats returns store-level counters.
type Stats = core.Stats

// Stats returns store-level counters.
func (s *Store) Stats() Stats { return s.inner.Stats() }

// NumTriples returns the number of stored triples.
func (s *Store) NumTriples() int { return s.inner.NumTriples() }

// PoolStats exposes the buffer pool counters: the simulated page side
// (hits, misses, simulated I/O time) and the real memory-manager side
// (decode faults, evictions, resident decoded bytes against the
// Options.PoolBytes budget).
type PoolStats = colstore.PoolStats

// PoolStats returns the buffer pool counters.
func (s *Store) PoolStats() PoolStats { return s.inner.Pool().Stats() }

// ResetCold flushes the buffer pool, as if the server had restarted —
// the "Cold" condition of the paper's Table I. Both the simulated page
// table and the real decoded segments of an opened store are dropped;
// the latter fault back in from the snapshot on the next scan.
func (s *Store) ResetCold() { s.inner.Pool().ResetCold() }

// ResetPoolStats zeroes the pool counters without evicting pages.
func (s *Store) ResetPoolStats() { s.inner.Pool().ResetStats() }

// Internal returns the underlying engine for benchmark harnesses and
// advanced use; the core API may change between versions.
func (s *Store) Internal() *core.Store { return s.inner }

// NewFromCore wraps an already-constructed core store in the public
// facade — for module-internal harnesses that need core-only options
// (fault-injected filesystems, probe intervals). The core API may
// change between versions.
func NewFromCore(inner *core.Store) *Store { return &Store{inner: inner} }
