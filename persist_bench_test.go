// Persistence benchmarks: snapshot checkpoint cost, the open fast path
// (lazy vs forcing a cold full scan), and WAL append throughput. All
// three are gated in CI against the main baseline.
package srdf_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"srdf/internal/core"
	"srdf/internal/dict"
	"srdf/internal/nt"
	"srdf/internal/plan"
	"srdf/internal/storage"
)

// persistedBenchPath builds an organized two-column store of n subjects
// with a small delta tail and saves it once, returning the snapshot path.
func persistedBenchPath(b *testing.B, n int) string {
	b.Helper()
	st := deltaBenchStore(b, n, 128)
	path := filepath.Join(b.TempDir(), "bench.srdf")
	if err := st.Save(path); err != nil {
		b.Fatal(err)
	}
	return path
}

func BenchmarkSnapshot_Save(b *testing.B) {
	st := deltaBenchStore(b, 20000, 128)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Save(filepath.Join(dir, "save.srdf")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot_Open(b *testing.B) {
	path := persistedBenchPath(b, 20000)
	opts := core.DefaultOptions()
	opts.CompactThreshold = -1

	// lazy: the open fast path — checksum, wire up, decode nothing.
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := core.OpenStore(path, opts)
			if err != nil {
				b.Fatal(err)
			}
			if ps := st.Pool().Stats(); ps.SegmentsDecoded != 0 {
				b.Fatalf("lazy open decoded %d segments", ps.SegmentsDecoded)
			}
		}
	})
	// cold: open plus a first full scan, faulting a column's blocks in.
	b.Run("cold", func(b *testing.B) {
		q := `SELECT ?s ?a WHERE { ?s <http://del/a> ?a . FILTER (?a >= 0) }`
		for i := 0; i < b.N; i++ {
			st, err := core.OpenStore(path, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := st.Query(q, core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("cold scan returned nothing")
			}
		}
	})
}

// BenchmarkScan_OutOfCore scans an opened snapshot under a pool budget
// half the scan's decoded working set: block decodes compete with LRU
// eviction, so the fault → decode → evict cycle sits on the hot path
// instead of the everything-stays-resident fast case the other scan
// benches measure.
func BenchmarkScan_OutOfCore(b *testing.B) {
	path := persistedBenchPath(b, 20000)
	opts := core.DefaultOptions()
	opts.CompactThreshold = -1
	st, err := core.OpenStore(path, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	q := `SELECT ?s ?a WHERE { ?s <http://del/a> ?a . FILTER (?a >= 0) }`
	// One unlimited pass measures the scan's decoded footprint; the
	// budget is set to half of it so steady state must evict.
	if _, err := st.Query(q, core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true}); err != nil {
		b.Fatal(err)
	}
	working := st.Pool().Stats().ResidentBytes
	if working == 0 {
		b.Fatal("warm scan decoded nothing")
	}
	st.Pool().SetBudget(working / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query(q, core.QueryOptions{Mode: plan.ModeRDFScan, ZoneMaps: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("out-of-core scan returned nothing")
		}
	}
	b.StopTimer()
	ps := st.Pool().Stats()
	if ps.Evictions == 0 {
		b.Fatalf("no evictions under a tenth-size budget (%d bytes)", opts.PoolBytes)
	}
	b.ReportMetric(float64(ps.Faults)/float64(b.N), "faults/op")
}

func BenchmarkWAL_Append(b *testing.B) {
	w, _, err := storage.OpenWAL(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(storage.Op{T: nt.Triple{
			S: dict.IRI(fmt.Sprintf("http://del/s%07d", i)),
			P: dict.IRI("http://del/a"),
			O: dict.IntLit(int64(i)),
		}})
		// fsync-on-batch: one durable batch per 256 appends
		if i%256 == 255 {
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
}
