#!/usr/bin/env bash
# End-to-end SPARQL Protocol conformance for `srdf serve`: builds the
# binary, serves a fixture snapshot, and exercises the wire contract
# with curl — both request forms, all three result formats, the error
# status codes (400/405/406/408/415/503), cancellation freeing slots,
# and SIGTERM graceful drain of an open result stream.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

echo "== build binary and fixture snapshot"
go build -o "$WORK/srdf" ./cmd/srdf
for i in $(seq 0 1999); do
  printf '<http://ex/p%d> <http://ex/name> "p%d" .\n' "$i" "$i"
  printf '<http://ex/p%d> <http://ex/age> "%d"^^<http://www.w3.org/2001/XMLSchema#integer> .\n' "$i" $((20 + i % 60))
done > "$WORK/fixture.nt"
"$WORK/srdf" build -o "$WORK/fixture.srdf" "$WORK/fixture.nt" 2>/dev/null

# start_server <port> <extra flags...>; waits for /healthz
start_server() {
  local port=$1; shift
  "$WORK/srdf" serve -addr "127.0.0.1:$port" "$@" "$WORK/fixture.srdf" 2>"$WORK/server-$port.log" &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && return 0
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$WORK/server-$port.log" >&2; fail "server on :$port died at startup"; }
    sleep 0.1
  done
  fail "server on :$port never became healthy"
}

stop_server() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null && wait "$SRV_PID" 2>/dev/null || true
  SRV_PID=""
}

Q='SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }'
CROSS='SELECT ?a ?b WHERE { ?a <http://ex/name> ?n . ?b <http://ex/age> ?m }'
BASE=http://127.0.0.1:7871

echo "== protocol conformance"
start_server 7871

# GET, default accept -> SPARQL JSON
code=$(curl -s -o "$WORK/get.json" -w '%{http_code} %{content_type}' -G --data-urlencode "query=$Q" "$BASE/sparql")
[ "$code" = "200 application/sparql-results+json; charset=utf-8" ] || fail "GET json: got '$code'"
grep -q '"vars":\["s","n"\]' "$WORK/get.json" || fail "GET json: bad head"
[ "$(grep -o '"type":"uri"' "$WORK/get.json" | wc -l)" = 2000 ] || fail "GET json: wrong row count"

# POST form-urlencoded -> identical body
code=$(curl -s -o "$WORK/post-form.json" -w '%{http_code}' --data-urlencode "query=$Q" "$BASE/sparql")
[ "$code" = 200 ] || fail "POST form: got $code"
cmp -s "$WORK/get.json" "$WORK/post-form.json" || fail "POST form: body differs from GET"

# POST application/sparql-query (bare query body) -> identical body
code=$(curl -s -o "$WORK/post-raw.json" -w '%{http_code}' -H 'Content-Type: application/sparql-query' --data-binary "$Q" "$BASE/sparql")
[ "$code" = 200 ] || fail "POST raw: got $code"
cmp -s "$WORK/get.json" "$WORK/post-raw.json" || fail "POST raw: body differs from GET"

# content negotiation: CSV and TSV
code=$(curl -s -o "$WORK/res.csv" -w '%{http_code} %{content_type}' -H 'Accept: text/csv' -G --data-urlencode "query=$Q" "$BASE/sparql")
[ "$code" = "200 text/csv; charset=utf-8" ] || fail "CSV: got '$code'"
head -1 "$WORK/res.csv" | grep -q $'^s,n\r$' || fail "CSV: bad header: $(head -1 "$WORK/res.csv")"
code=$(curl -s -o "$WORK/res.tsv" -w '%{http_code} %{content_type}' -H 'Accept: text/tab-separated-values' -G --data-urlencode "query=$Q" "$BASE/sparql")
[ "$code" = "200 text/tab-separated-values; charset=utf-8" ] || fail "TSV: got '$code'"
head -1 "$WORK/res.tsv" | grep -q $'^?s\t?n$' || fail "TSV: bad header: $(head -1 "$WORK/res.tsv")"

# error codes
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Accept: application/rdf+xml' -G --data-urlencode "query=$Q" "$BASE/sparql")
[ "$code" = 406 ] || fail "unacceptable format: got $code, want 406"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/sparql")
[ "$code" = 400 ] || fail "missing query: got $code, want 400"
code=$(curl -s -o /dev/null -w '%{http_code}' -G --data-urlencode 'query=SELECT WHERE garbage' "$BASE/sparql")
[ "$code" = 400 ] || fail "malformed query: got $code, want 400"
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: text/plain' --data-binary "$Q" "$BASE/sparql")
[ "$code" = 415 ] || fail "bad content type: got $code, want 415"
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$BASE/sparql")
[ "$code" = 405 ] || fail "PUT: got $code, want 405"

# metrics
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
for m in srdf_queries_total srdf_plan_cache_hits_total srdf_query_duration_seconds_count srdf_triples; do
  grep -q "$m" "$WORK/metrics.txt" || fail "metrics: missing $m"
done
stop_server
echo "   ok"

echo "== telemetry: exec metrics, query log, explain=analyze, pprof"
start_server 7875 -debug-addr 127.0.0.1:7876 -slow-query 1ns -log-format json
TBASE=http://127.0.0.1:7875
DBASE=http://127.0.0.1:7876
# load so the executor counters and the query log move
for _ in $(seq 1 5); do
  curl -fsS -G --data-urlencode "query=$Q" -o /dev/null "$TBASE/sparql"
done
curl -fsS "$TBASE/metrics" > "$WORK/metrics-t.txt"
for m in srdf_exec_scan_rows_total srdf_exec_operator_seconds_total srdf_query_log_queries_total srdf_query_log_rows_total; do
  grep -q "^$m" "$WORK/metrics-t.txt" || fail "telemetry metrics: missing $m"
done
grep -q '^srdf_exec_scan_rows_total 0$' "$WORK/metrics-t.txt" && fail "srdf_exec_scan_rows_total did not move under load"
grep -q '^srdf_query_log_queries_total 5$' "$WORK/metrics-t.txt" || fail "query log did not count 5 queries: $(grep srdf_query_log_queries_total "$WORK/metrics-t.txt")"
# explain=analyze over HTTP returns the annotated plan as text
code=$(curl -s -o "$WORK/analyze.txt" -w '%{http_code} %{content_type}' -G --data-urlencode "query=$Q" "$TBASE/sparql?explain=analyze")
[ "$code" = "200 text/plain; charset=utf-8" ] || fail "explain=analyze: got '$code'"
grep -q '(analyzed)' "$WORK/analyze.txt" || fail "analyze output missing (analyzed) header"
grep -q 'act_rows=2000' "$WORK/analyze.txt" || fail "analyze output missing act_rows: $(cat "$WORK/analyze.txt")"
grep -q 'actual: rows=2000' "$WORK/analyze.txt" || fail "analyze output missing actual footer"
# /debug/queries on the public mux serves the structured log
curl -fsS "$TBASE/debug/queries" > "$WORK/queries.json"
grep -q '"outcome": "ok"' "$WORK/queries.json" || fail "/debug/queries has no ok records"
grep -q '"predicates"' "$WORK/queries.json" || fail "/debug/queries records missing predicates"
grep -q '"profile"' "$WORK/queries.json" || fail "/debug/queries missing workload profile"
# debug listener: pprof + expvar live there, not on the public port
code=$(curl -s -o /dev/null -w '%{http_code}' "$DBASE/debug/pprof/profile?seconds=1")
[ "$code" = 200 ] || fail "pprof profile on debug listener: got $code"
curl -fsS "$DBASE/debug/vars" | grep -q memstats || fail "expvar missing on debug listener"
code=$(curl -s -o /dev/null -w '%{http_code}' "$TBASE/debug/pprof/cmdline")
[ "$code" = 404 ] || fail "pprof leaked onto the public listener: got $code"
# structured access log carries request ids and slow-query warnings
grep -q '"msg":"query"' "$WORK/server-7875.log" || fail "no structured access log lines"
grep -q '"msg":"slow query"' "$WORK/server-7875.log" || fail "no slow-query warning despite 1ns threshold"
stop_server
echo "   ok"

echo "== 408 on per-query timeout"
start_server 7872 -timeout 1ns
code=$(curl -s -o /dev/null -w '%{http_code}' -G --data-urlencode "query=$Q" "http://127.0.0.1:7872/sparql")
[ "$code" = 408 ] || fail "timeout: got $code, want 408"
stop_server
echo "   ok"

echo "== 503 on admission overflow, cancellation frees the slot"
start_server 7873 -max-concurrent 1 -queue -1
# hold the only slot: a cross-join result far larger than any socket
# buffering, drained at a crawl
curl -s --limit-rate 10k -G --data-urlencode "query=$CROSS" -o /dev/null "http://127.0.0.1:7873/sparql" &
HOLD_PID=$!
sleep 1
out=$(curl -s -o /dev/null -w '%{http_code} %header{Retry-After}' -G --data-urlencode "query=$Q" "http://127.0.0.1:7873/sparql")
[ "$out" = "503 1" ] || fail "overflow: got '$out', want '503 1'"
kill "$HOLD_PID" 2>/dev/null; wait "$HOLD_PID" 2>/dev/null || true
# client gone -> executor cancels -> slot frees; a fresh query succeeds
ok=""
for _ in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -G --data-urlencode "query=$Q" "http://127.0.0.1:7873/sparql")
  [ "$code" = 200 ] && { ok=1; break; }
  sleep 0.1
done
[ -n "$ok" ] || fail "slot never freed after client disconnect (last code $code)"
stop_server
echo "   ok"

echo "== SIGTERM drains the open stream"
start_server 7874 -drain 30s
# ~90 MB of JSON: far beyond socket buffers, so the handler is still
# streaming when SIGTERM lands; the rate cap keeps the drain observable
curl -s --limit-rate 30M -G --data-urlencode "query=$CROSS LIMIT 1000000" -o "$WORK/drain.json" "http://127.0.0.1:7874/sparql" &
DRAIN_PID=$!
sleep 1
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then cat "$WORK/server-7874.log" >&2; fail "server exited non-zero on SIGTERM"; fi
SRV_PID=""
wait "$DRAIN_PID" || fail "client stream was cut instead of drained"
tail -c 8 "$WORK/drain.json" | grep -q ']}}' || fail "drained body is truncated"
[ "$(grep -o '"type":"uri"' "$WORK/drain.json" | wc -l)" = 2000000 ] || fail "drained body has wrong row count"
grep -q 'drained' "$WORK/server-7874.log" || fail "server log missing drain message"
echo "   ok"

echo "serve_e2e: PASS"
